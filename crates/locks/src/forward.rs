//! Forward lists for the grouped-lock (lock-grouping) protocol of §3.4.
//!
//! During a *collection window* the server gathers all lock requests on one
//! object into an ordered **forward list**. The lock is granted to the first
//! entry and the object travels client→client down the list; the last client
//! returns it to the server. For `n` requests this takes `2n + 1` messages
//! instead of up to `3n` (plain 2PL) or `4n` (callback caching).
//!
//! In a real-time environment the list is ordered by transaction deadline,
//! expired entries are skipped, and consecutive read-only entries are marked
//! for parallel shared access.

use siteselect_types::{ClientId, LockMode, ObjectId, SimTime, TransactionId};

/// One hop in a forward list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardEntry {
    /// The client to ship the object to.
    pub client: ClientId,
    /// The transaction whose request produced this entry.
    pub txn: TransactionId,
    /// That transaction's deadline (entries are served in this order and
    /// expired entries are skipped).
    pub deadline: SimTime,
    /// Requested mode; consecutive [`LockMode::Shared`] entries may be
    /// served in parallel.
    pub mode: LockMode,
}

/// A deadline-ordered list of clients an object should visit.
///
/// # Example
///
/// ```
/// use siteselect_locks::{ForwardEntry, ForwardList};
/// use siteselect_types::{ClientId, LockMode, ObjectId, SimTime, TransactionId};
///
/// let mut fl = ForwardList::new(ObjectId(1));
/// fl.push(ForwardEntry {
///     client: ClientId(2),
///     txn: TransactionId::new(ClientId(2), 0),
///     deadline: SimTime::from_secs(30),
///     mode: LockMode::Exclusive,
/// });
/// fl.push(ForwardEntry {
///     client: ClientId(1),
///     txn: TransactionId::new(ClientId(1), 0),
///     deadline: SimTime::from_secs(10),
///     mode: LockMode::Shared,
/// });
/// // Earliest deadline first.
/// assert_eq!(fl.entries()[0].client, ClientId(1));
/// assert_eq!(ForwardList::expected_messages(2), 5); // Figure 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardList {
    object: ObjectId,
    entries: Vec<ForwardEntry>,
}

impl ForwardList {
    /// Creates an empty forward list for `object`.
    #[must_use]
    pub fn new(object: ObjectId) -> Self {
        ForwardList {
            object,
            entries: Vec::new(),
        }
    }

    /// The object this list routes.
    #[must_use]
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Inserts an entry in deadline order (stable for equal deadlines).
    pub fn push(&mut self, entry: ForwardEntry) {
        let pos = self
            .entries
            .iter()
            .position(|e| e.deadline > entry.deadline)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
    }

    /// The remaining entries, in service order.
    #[must_use]
    pub fn entries(&self) -> &[ForwardEntry] {
        &self.entries
    }

    /// Number of remaining entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pops the next entry whose transaction is still live at `now`,
    /// discarding (and returning in the second slot) the expired entries
    /// that were skipped — the paper uses the stored deadline "to ignore
    /// transactions that have missed their deadlines".
    pub fn pop_next_live(&mut self, now: SimTime) -> (Option<ForwardEntry>, Vec<ForwardEntry>) {
        let mut skipped = Vec::new();
        while !self.entries.is_empty() {
            let e = self.entries.remove(0);
            if e.deadline >= now {
                return (Some(e), skipped);
            }
            skipped.push(e);
        }
        (None, skipped)
    }

    /// The next *parallel group*: the leading run of shared entries (several
    /// readers may hold the object simultaneously), or a single exclusive
    /// entry. Does not consume.
    #[must_use]
    pub fn next_group(&self) -> &[ForwardEntry] {
        match self.entries.first() {
            None => &[],
            Some(first) if first.mode == LockMode::Exclusive => &self.entries[..1],
            Some(_) => {
                let run = self
                    .entries
                    .iter()
                    .take_while(|e| e.mode == LockMode::Shared)
                    .count();
                &self.entries[..run]
            }
        }
    }

    /// The final destination currently scheduled — what the server reports
    /// as the object's location when asked (§4: "the server refers to the
    /// object's forward list and reports the last client in the list").
    #[must_use]
    pub fn last_client(&self) -> Option<ClientId> {
        self.entries.last().map(|e| e.client)
    }

    /// Messages needed to serve `n` grouped requests: `2n + 1` (§3.4).
    #[must_use]
    pub fn expected_messages(n: usize) -> usize {
        2 * n + 1
    }

    /// Messages plain strict 2PL needs for `n` requests on one object:
    /// `3n` (§3.4: n requests, n grants, n releases).
    #[must_use]
    pub fn two_pl_messages(n: usize) -> usize {
        3 * n
    }

    /// Worst-case messages for callback caching: `4n` (§3.4: request,
    /// grant, individual recall, return).
    #[must_use]
    pub fn callback_worst_case_messages(n: usize) -> usize {
        4 * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(client: u16, deadline_s: u64, mode: LockMode) -> ForwardEntry {
        ForwardEntry {
            client: ClientId(client),
            txn: TransactionId::new(ClientId(client), deadline_s),
            deadline: SimTime::from_secs(deadline_s),
            mode,
        }
    }

    #[test]
    fn entries_sorted_by_deadline() {
        let mut fl = ForwardList::new(ObjectId(1));
        fl.push(entry(1, 30, LockMode::Exclusive));
        fl.push(entry(2, 10, LockMode::Shared));
        fl.push(entry(3, 20, LockMode::Exclusive));
        let order: Vec<u16> = fl.entries().iter().map(|e| e.client.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert_eq!(fl.last_client(), Some(ClientId(1)));
    }

    #[test]
    fn stable_for_equal_deadlines() {
        let mut fl = ForwardList::new(ObjectId(1));
        fl.push(entry(1, 10, LockMode::Shared));
        fl.push(entry(2, 10, LockMode::Shared));
        let order: Vec<u16> = fl.entries().iter().map(|e| e.client.0).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn expired_entries_are_skipped() {
        let mut fl = ForwardList::new(ObjectId(1));
        fl.push(entry(1, 5, LockMode::Exclusive));
        fl.push(entry(2, 8, LockMode::Exclusive));
        fl.push(entry(3, 20, LockMode::Exclusive));
        let (next, skipped) = fl.pop_next_live(SimTime::from_secs(10));
        assert_eq!(next.unwrap().client, ClientId(3));
        assert_eq!(skipped.len(), 2);
        assert!(fl.is_empty());
    }

    #[test]
    fn all_expired_returns_none() {
        let mut fl = ForwardList::new(ObjectId(1));
        fl.push(entry(1, 5, LockMode::Shared));
        let (next, skipped) = fl.pop_next_live(SimTime::from_secs(100));
        assert!(next.is_none());
        assert_eq!(skipped.len(), 1);
    }

    #[test]
    fn live_boundary_is_inclusive() {
        let mut fl = ForwardList::new(ObjectId(1));
        fl.push(entry(1, 10, LockMode::Shared));
        let (next, _) = fl.pop_next_live(SimTime::from_secs(10));
        assert!(next.is_some());
    }

    #[test]
    fn parallel_read_group() {
        let mut fl = ForwardList::new(ObjectId(1));
        fl.push(entry(1, 10, LockMode::Shared));
        fl.push(entry(2, 11, LockMode::Shared));
        fl.push(entry(3, 12, LockMode::Exclusive));
        assert_eq!(fl.next_group().len(), 2);
        let mut fl2 = ForwardList::new(ObjectId(1));
        fl2.push(entry(3, 5, LockMode::Exclusive));
        fl2.push(entry(1, 10, LockMode::Shared));
        assert_eq!(fl2.next_group().len(), 1);
        assert!(ForwardList::new(ObjectId(2)).next_group().is_empty());
    }

    #[test]
    fn message_count_formulas() {
        // Figure 1 vs Figure 2 for n = 2.
        assert_eq!(ForwardList::two_pl_messages(2), 6);
        assert_eq!(ForwardList::expected_messages(2), 5);
        assert_eq!(ForwardList::callback_worst_case_messages(2), 8);
        // Grouping always wins for n >= 1.
        for n in 1..100 {
            assert!(ForwardList::expected_messages(n) <= ForwardList::two_pl_messages(n));
            assert!(ForwardList::expected_messages(n) < ForwardList::callback_worst_case_messages(n));
        }
    }
}
