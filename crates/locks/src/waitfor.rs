//! Wait-for-graph deadlock detection.
//!
//! The paper's servers check every incoming object request against a
//! wait-for graph and enqueue it "only if it does not cause a deadlock cycle"
//! (§5.1). [`WaitForGraph::would_deadlock`] performs exactly that tentative
//! check; [`WaitForGraph::add_waits`] commits the edges once the request is
//! queued.

use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

/// A directed graph of "waits-for" edges between lock owners.
///
/// # Example
///
/// ```
/// use siteselect_locks::WaitForGraph;
///
/// let mut g: WaitForGraph<u32> = WaitForGraph::new();
/// g.add_waits(1, [2]);
/// g.add_waits(2, [3]);
/// assert!(g.would_deadlock(3, &[1])); // 3 -> 1 -> 2 -> 3 closes a cycle
/// assert!(!g.would_deadlock(3, &[4]));
/// ```
#[derive(Debug, Clone)]
pub struct WaitForGraph<N> {
    edges: HashMap<N, HashSet<N>>,
}

impl<N: Copy + Eq + Hash + Debug> WaitForGraph<N> {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        WaitForGraph {
            edges: HashMap::new(),
        }
    }

    /// True if adding edges `waiter -> h` for each `h` in `holders` would
    /// close a cycle — i.e. some holder already (transitively) waits for
    /// `waiter`.
    #[must_use]
    pub fn would_deadlock(&self, waiter: N, holders: &[N]) -> bool {
        holders.iter().any(|&h| h == waiter || self.reaches(h, waiter))
    }

    /// DFS reachability: does `from` reach `to` through wait edges?
    fn reaches(&self, from: N, to: N) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Records that `waiter` now waits for each of `holders`.
    pub fn add_waits(&mut self, waiter: N, holders: impl IntoIterator<Item = N>) {
        let set = self.edges.entry(waiter).or_default();
        for h in holders {
            if h != waiter {
                set.insert(h);
            }
        }
        if set.is_empty() {
            self.edges.remove(&waiter);
        }
    }

    /// Removes every outgoing edge of `waiter` (it stopped waiting).
    pub fn clear_waits(&mut self, waiter: N) {
        self.edges.remove(&waiter);
    }

    /// Removes one specific wait edge.
    pub fn remove_edge(&mut self, waiter: N, holder: N) {
        if let Some(set) = self.edges.get_mut(&waiter) {
            set.remove(&holder);
            if set.is_empty() {
                self.edges.remove(&waiter);
            }
        }
    }

    /// Removes a node entirely: its outgoing edges and every edge pointing
    /// at it (the owner released everything).
    pub fn remove_node(&mut self, node: N) {
        self.edges.remove(&node);
        // detlint: allow(D2) — per-entry removal; result independent of visit order
        self.edges.retain(|_, set| {
            set.remove(&node);
            !set.is_empty()
        });
    }

    /// Number of nodes with outgoing edges.
    #[must_use]
    pub fn waiting_nodes(&self) -> usize {
        self.edges.len()
    }

    /// Total number of wait edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Exhaustive cycle check (O(V·E)); used by tests to validate that the
    /// incremental `would_deadlock` gate keeps the graph acyclic.
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        self.edges.keys().any(|&n| self.reaches_via_edges(n))
    }

    fn reaches_via_edges(&self, start: N) -> bool {
        // Does `start` reach itself through at least one edge?
        let mut stack: Vec<N> = self
            .edges
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

impl<N: Copy + Eq + Hash + Debug> Default for WaitForGraph<N> {
    fn default() -> Self {
        WaitForGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_waits(1, [2]);
        assert!(g.would_deadlock(2, &[1]));
        assert!(!g.would_deadlock(2, &[3]));
    }

    #[test]
    fn transitive_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_waits(1, [2]);
        g.add_waits(2, [3]);
        g.add_waits(3, [4]);
        assert!(g.would_deadlock(4, &[1]));
        assert!(g.would_deadlock(4, &[2]));
        assert!(!g.would_deadlock(4, &[5]));
    }

    #[test]
    fn self_wait_counts_as_deadlock() {
        let g: WaitForGraph<u32> = WaitForGraph::new();
        assert!(g.would_deadlock(1, &[1]));
    }

    #[test]
    fn clear_waits_breaks_cycle_risk() {
        let mut g = WaitForGraph::new();
        g.add_waits(1, [2]);
        g.clear_waits(1);
        assert!(!g.would_deadlock(2, &[1]));
        assert_eq!(g.waiting_nodes(), 0);
    }

    #[test]
    fn remove_edge_is_precise() {
        let mut g = WaitForGraph::new();
        g.add_waits(1, [2, 3]);
        g.remove_edge(1, 2);
        assert!(!g.would_deadlock(2, &[1]));
        assert!(g.would_deadlock(3, &[1]));
        g.remove_edge(1, 3);
        assert_eq!(g.waiting_nodes(), 0);
    }

    #[test]
    fn remove_node_removes_incoming_edges() {
        let mut g = WaitForGraph::new();
        g.add_waits(1, [2]);
        g.add_waits(3, [2]);
        g.remove_node(2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.would_deadlock(2, &[1]));
    }

    #[test]
    fn self_edges_are_ignored_on_insert() {
        let mut g = WaitForGraph::new();
        g.add_waits(1, [1]);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn gate_keeps_graph_acyclic() {
        let mut g = WaitForGraph::new();
        // Build a random-ish wait pattern, only committing edges that the
        // gate approves; the graph must stay acyclic throughout.
        let mut x = 0x12345u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let waiter = (x % 20) as u32;
            let holder = ((x >> 8) % 20) as u32;
            if waiter != holder && !g.would_deadlock(waiter, &[holder]) {
                g.add_waits(waiter, [holder]);
            }
            assert!(!g.has_cycle());
            if x.is_multiple_of(7) {
                g.remove_node(((x >> 16) % 20) as u32);
            }
        }
    }

    #[test]
    fn multi_holder_check() {
        let mut g = WaitForGraph::new();
        g.add_waits(5, [6]);
        // Waiting on {7, 6-chain-to-5}? 6 doesn't reach 5... 5 waits for 6,
        // so 6 reaching 5 requires an edge 6->...; none exists.
        assert!(!g.would_deadlock(6, &[7]));
        assert!(g.would_deadlock(6, &[7, 5]));
    }
}
