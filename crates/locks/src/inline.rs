//! Re-export of the workspace small-vector.
//!
//! `InlineVec` started life here backing lock-table holder and waiter
//! lists; it now lives in `siteselect_types` (next to the other dense,
//! allocation-avoiding containers) so the CPU models and engine hot paths
//! can use it without depending on the locking crate. This module keeps
//! the original `siteselect_locks::inline::InlineVec` path working.

pub use siteselect_types::InlineVec;
