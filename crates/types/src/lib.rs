//! Shared vocabulary types for the `siteselect` workspace.
//!
//! This crate defines the identifiers, simulated-time arithmetic, lock modes,
//! transaction descriptions and configuration structures used by every other
//! crate in the reproduction of *Kanitkar & Delis, "Site Selection for
//! Real-Time Client Request Handling" (ICDCS 1999)*.
//!
//! The crate is dependency-light on purpose: it sits at the bottom of the
//! workspace dependency graph so that the storage, locking, workload, network
//! and system crates can all speak the same language without cycles.
//!
//! # Example
//!
//! ```
//! use siteselect_types::{ExperimentConfig, SystemKind, SimDuration};
//!
//! let cfg = ExperimentConfig::paper(SystemKind::LoadSharing, 60, 0.05);
//! assert_eq!(cfg.clients, 60);
//! assert_eq!(cfg.database.num_objects, 10_000);
//! assert_eq!(cfg.workload.mean_interarrival, SimDuration::from_secs(10));
//! cfg.validate().unwrap();
//! ```

pub mod config;
pub mod dense;
pub mod error;
pub mod ids;
pub mod inline;
pub mod lock;
pub mod time;
pub mod txn;

pub use config::{
    AccessPatternConfig, ClientConfig, CpuConfig, DatabaseConfig, DeadlinePolicy, DiskConfig,
    ExperimentConfig, FaultConfig, LanKind, LoadSharingConfig, NetworkConfig, RuntimeConfig,
    ServerConfig, SystemKind, WorkloadConfig,
};
pub use dense::{ObjectMap, ObjectSet};
pub use error::ConfigError;
pub use ids::{ClientId, ObjectId, SiteId, SubtaskId, TransactionId};
pub use inline::InlineVec;
pub use lock::LockMode;
pub use time::{SimDuration, SimTime};
pub use txn::{AbortReason, AccessSpec, TransactionSpec, TxnOutcome};
