//! Experiment configuration: every tunable of the three system models.
//!
//! [`ExperimentConfig::paper`] reproduces Table 1 of the paper; every knob can
//! be overridden for ablation studies. The configuration is deliberately
//! explicit about the one place where we must *calibrate* rather than copy
//! the paper: the fraction of a transaction's nominal length that is pure CPU
//! demand (see [`CpuConfig::txn_cpu_fraction`]). The paper's prototype burned
//! wall-clock CPU on 1999-era Sun ULTRAs shared by up to 25 clients per
//! machine; absolute figure values are not recoverable, so defaults are
//! chosen to reproduce the published *shapes* (documented in EXPERIMENTS.md).


use crate::error::ConfigError;
use crate::time::SimDuration;

/// Which of the three prototype systems to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// CE-RTDBS: all processing at the server; clients are terminals.
    Centralized,
    /// CS-RTDBS: object-shipping client-server with callback locking and
    /// inter-transaction caching.
    ClientServer,
    /// LS-CS-RTDBS: CS-RTDBS plus the paper's load-sharing algorithm
    /// (transaction shipping, decomposition, forward lists, deadline-ordered
    /// object request scheduling).
    LoadSharing,
}

impl SystemKind {
    /// All three systems, in the order the paper presents them.
    pub const ALL: [SystemKind; 3] = [
        SystemKind::Centralized,
        SystemKind::ClientServer,
        SystemKind::LoadSharing,
    ];

    /// The abbreviation used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Centralized => "CE-RTDBS",
            SystemKind::ClientServer => "CS-RTDBS",
            SystemKind::LoadSharing => "LS-CS-RTDBS",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of the shared database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseConfig {
    /// Number of fixed-size objects (Table 1: 10,000).
    pub num_objects: u32,
    /// Size of one object / PF page in bytes (Table 1: 2 KB).
    pub object_size_bytes: u32,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            num_objects: 10_000,
            object_size_bytes: 2_048,
        }
    }
}

/// Disk service model for one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// Service time to read or write one page (seek + rotation + transfer).
    pub page_service_time: SimDuration,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            // Late-1990s commodity disk: ~8 ms average access per 2 KB page.
            page_service_time: SimDuration::from_millis(8),
        }
    }
}

/// CPU speeds and the calibration of transaction processing demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Relative speed of a client workstation (1.0 = baseline).
    pub client_speed: f64,
    /// Relative speed of the server machine. The prototype server ran alone
    /// on one of five identical ULTRAs while clients shared the remaining
    /// four, so the effective server:client speed ratio exceeded 1; the
    /// default of 4.0 models the four client machines' worth of headroom the
    /// centralized system enjoys before it saturates.
    pub server_speed: f64,
    /// Fraction of a transaction's nominal length that is pure CPU demand.
    ///
    /// Table 1's "average transaction length" of 10 s is a wall-clock target
    /// on saturated 1999 hardware; replaying it literally as CPU demand would
    /// saturate every configuration (each client would offer a load of 1.0).
    /// The default of 0.1 (1 s of CPU per 10 s transaction) keeps per-client
    /// offered load at 10%, which reproduces the paper's curves: the
    /// centralized server saturates near 40 clients while the client-server
    /// systems degrade gently.
    pub txn_cpu_fraction: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            client_speed: 1.0,
            server_speed: 4.0,
            txn_cpu_fraction: 0.1,
        }
    }
}

/// Server-side resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Objects that fit in the server's buffer pool. Table 1: 5,000 for the
    /// centralized system, 1,000 for the client-server systems.
    pub buffer_objects: usize,
    /// Maximum concurrently executing transactions at the centralized server
    /// (the prototype ran up to one hundred transaction threads).
    pub max_concurrent_txns: usize,
    /// Server disk model.
    pub disk: DiskConfig,
}

impl ServerConfig {
    /// Server configuration for the centralized system (5,000-object buffer).
    #[must_use]
    pub fn centralized() -> Self {
        ServerConfig {
            buffer_objects: 5_000,
            max_concurrent_txns: 100,
            disk: DiskConfig::default(),
        }
    }

    /// Server configuration for the client-server systems (1,000-object
    /// buffer).
    #[must_use]
    pub fn client_server() -> Self {
        ServerConfig {
            buffer_objects: 1_000,
            max_concurrent_txns: 100,
            disk: DiskConfig::default(),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::client_server()
    }
}

/// Client-side resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Objects that fit in the client's memory cache (Table 1: 500).
    pub memory_cache_objects: usize,
    /// Objects that fit in the client's disk cache (Table 1: 500).
    pub disk_cache_objects: usize,
    /// Client disk model (used when promoting from / demoting to the disk
    /// cache tier).
    pub disk: DiskConfig,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            memory_cache_objects: 500,
            disk_cache_objects: 500,
            disk: DiskConfig::default(),
        }
    }
}

/// LAN topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LanKind {
    /// A single shared medium (the paper's 10 Mbps Ethernet): transmissions
    /// serialize on the wire.
    SharedEthernet,
    /// An idealized switched LAN: each ordered site pair has its own link
    /// (used for ablation).
    Switched,
}

/// Network model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Topology.
    pub kind: LanKind,
    /// Raw bandwidth in bits per second (Table 1 environment: 10 Mbps).
    pub bandwidth_bps: u64,
    /// One-way propagation plus protocol-stack latency per message.
    pub latency: SimDuration,
    /// Wire size of a control message (requests, grants without payload,
    /// callbacks, acknowledgements).
    pub control_bytes: u32,
    /// Per-message header overhead added to object payloads.
    pub header_bytes: u32,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            kind: LanKind::SharedEthernet,
            bandwidth_bps: 10_000_000,
            latency: SimDuration::from_micros(500),
            control_bytes: 128,
            header_bytes: 64,
        }
    }
}

/// How transaction deadlines are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlinePolicy {
    /// `deadline = arrival + Exp(mean)` — Table 1's "average transaction
    /// deadline 20 s (exponential distribution)".
    ExponentialOffset {
        /// Mean of the exponential offset.
        mean: SimDuration,
    },
    /// `deadline = arrival + slack_factor * length` — proportional slack,
    /// used in ablations.
    ProportionalSlack {
        /// Multiplier applied to the transaction's nominal length.
        factor: f64,
    },
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy::ExponentialOffset {
            mean: SimDuration::from_secs(20),
        }
    }
}

/// The Localized-RW access pattern (paper §5.1): 75% of each client's
/// accesses go to a per-client region of the database (uniformly), the rest
/// to the remainder of the database with Zipf skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessPatternConfig {
    /// Number of objects in each client's hot region.
    pub hot_region_objects: u32,
    /// Fraction of accesses that fall inside the hot region (0.75 in the
    /// paper).
    pub hot_access_fraction: f64,
    /// Zipf skew parameter for accesses outside the hot region.
    pub zipf_theta: f64,
}

impl Default for AccessPatternConfig {
    fn default() -> Self {
        AccessPatternConfig {
            hot_region_objects: 1_000,
            hot_access_fraction: 0.75,
            zipf_theta: 0.95,
        }
    }
}

/// Workload generation parameters (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Mean transaction inter-arrival time per client (Poisson process;
    /// Table 1: 10 s).
    pub mean_interarrival: SimDuration,
    /// Mean nominal transaction length (exponential; Table 1: 10 s). The
    /// CPU demand is `length * cpu.txn_cpu_fraction`.
    pub mean_length: SimDuration,
    /// Deadline assignment policy (Table 1: exponential, mean 20 s).
    pub deadline: DeadlinePolicy,
    /// Probability that any single object access is an update (Table 1:
    /// 1%, 5% or 20%).
    pub update_fraction: f64,
    /// Mean number of distinct objects accessed per transaction (Table 1:
    /// 10).
    pub mean_objects_per_txn: f64,
    /// Fraction of transactions that are decomposable (paper §5.1: 10%).
    pub decomposable_fraction: f64,
    /// Access pattern.
    pub access_pattern: AccessPatternConfig,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mean_interarrival: SimDuration::from_secs(10),
            mean_length: SimDuration::from_secs(10),
            deadline: DeadlinePolicy::default(),
            update_fraction: 0.05,
            mean_objects_per_txn: 10.0,
            decomposable_fraction: 0.10,
            access_pattern: AccessPatternConfig::default(),
        }
    }
}

/// Knobs of the load-sharing algorithm (only consulted when
/// [`SystemKind::LoadSharing`] runs). Each flag supports one ablation bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSharingConfig {
    /// Enable the H1 admission heuristic (queue feasibility via observed
    /// average transaction latency).
    pub h1_enabled: bool,
    /// Enable the H2 site-selection heuristic (fewest conflicting locks).
    pub h2_enabled: bool,
    /// Enable transaction decomposition for decomposable transactions.
    pub decomposition_enabled: bool,
    /// Length of the server's per-object lock-request collection window.
    pub collection_window: SimDuration,
    /// Enable grouped locks / forward lists. When disabled, every conflict
    /// is resolved with plain callbacks as in CS-RTDBS.
    pub forward_lists_enabled: bool,
    /// Route client-to-client shipments through the directory server
    /// (paper's setup) instead of the database server.
    pub directory_enabled: bool,
    /// Serve object requests in deadline order at the server and refuse to
    /// ship objects to expired transactions (paper §3.3).
    pub request_scheduling_enabled: bool,
    /// H2 ships a transaction only if the destination's conflicting-lock
    /// count is at most this fraction of the origin's (0.0 = require a
    /// conflict-free destination).
    pub ship_conflict_ratio: f64,
    /// H2 ships only to sites already holding locks on at least this
    /// fraction of the transaction's objects (§3.1: "a significant
    /// percentage of a transaction's required data is already cached").
    pub ship_locality_min: f64,
}

impl Default for LoadSharingConfig {
    fn default() -> Self {
        LoadSharingConfig {
            h1_enabled: true,
            h2_enabled: true,
            decomposition_enabled: true,
            collection_window: SimDuration::from_millis(100),
            forward_lists_enabled: true,
            directory_enabled: true,
            request_scheduling_enabled: true,
            ship_conflict_ratio: 0.5,
            ship_locality_min: 0.5,
        }
    }
}

/// Deterministic fault-injection knobs.
///
/// Every injection knob defaults to **off**, so a configuration that never
/// touches this struct replays bit-identically to a build without the fault
/// subsystem: no extra PRNG draws are made and no extra events are
/// scheduled unless a knob is enabled.
///
/// Fault schedules are derived from the run seed, so two runs with the same
/// seed inject the same crashes, losses and slow-disk episodes at the same
/// simulated instants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that any individual network message is silently lost.
    pub loss_probability: f64,
    /// Upper bound of the uniformly-distributed extra delay added to each
    /// message (zero = no jitter).
    pub max_delay_jitter: SimDuration,
    /// Mean up-time before a client site crashes (exponential; zero = sites
    /// never crash).
    pub mean_time_to_crash: SimDuration,
    /// Mean down-time before a crashed site recovers (exponential; zero =
    /// crashed sites stay down for the rest of the run).
    pub mean_recovery_time: SimDuration,
    /// Mean up-time before the **server** site crashes and restarts
    /// (exponential; zero = the server never crashes). Unlike client
    /// crashes, a server crash is followed by write-ahead-log replay: the
    /// site is down for `mean_recovery_time` plus however long the replay
    /// I/O takes under the (possibly slow) disk model, then rejoins with
    /// in-flight transactions aborted and lock/callback state re-derived.
    pub mean_time_to_server_crash: SimDuration,
    /// Mean up-time between slow-disk episodes at the server (exponential;
    /// zero = the disk never degrades).
    pub mean_time_to_slow_disk: SimDuration,
    /// Length of one slow-disk episode.
    pub slow_disk_duration: SimDuration,
    /// Multiplier on the per-page service time during a slow-disk episode.
    pub slow_disk_factor: f64,
    /// Lease on callbacks: a recall unanswered for this long presumes the
    /// holder dead, reclaims its lock and invalidates its cached copy
    /// (zero = wait forever, the pre-fault behaviour).
    pub callback_lease: SimDuration,
    /// First retry delay for unanswered control messages; doubles per
    /// attempt up to [`retry_backoff_cap`](Self::retry_backoff_cap).
    pub retry_backoff_base: SimDuration,
    /// Upper bound on the exponential retry backoff.
    pub retry_backoff_cap: SimDuration,
    /// Retries before a request is abandoned to the deadline sweep
    /// (zero = never retry).
    pub max_retries: u32,
}

impl FaultConfig {
    /// True if any injection knob is enabled. Handling machinery (leases,
    /// retries, liveness tracking) only engages when this is true, so a
    /// default config cannot perturb event ordering.
    #[must_use]
    pub fn injects_faults(&self) -> bool {
        self.loss_probability > 0.0
            || !self.max_delay_jitter.is_zero()
            || !self.mean_time_to_crash.is_zero()
            || !self.mean_time_to_server_crash.is_zero()
            || !self.mean_time_to_slow_disk.is_zero()
    }

    /// A moderately hostile preset used by the `repro faults` experiment:
    /// `intensity` in `[0, 1]` scales every injection knob from "off" to
    /// "frequent crashes, 10% loss, regular slow-disk episodes".
    #[must_use]
    pub fn chaos(intensity: f64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let crash_mean = if intensity > 0.0 {
            // 1000s mean up-time at full intensity, 10,000s at 10%.
            SimDuration::from_secs_f64(1_000.0 / intensity)
        } else {
            SimDuration::ZERO
        };
        let slow_mean = if intensity > 0.0 {
            SimDuration::from_secs_f64(500.0 / intensity)
        } else {
            SimDuration::ZERO
        };
        FaultConfig {
            loss_probability: 0.10 * intensity,
            max_delay_jitter: SimDuration::from_secs_f64(0.02 * intensity),
            mean_time_to_crash: crash_mean,
            mean_recovery_time: SimDuration::from_secs(60),
            mean_time_to_slow_disk: slow_mean,
            slow_disk_duration: SimDuration::from_secs(20),
            slow_disk_factor: 4.0,
            ..FaultConfig::default()
        }
    }

    /// [`chaos`](Self::chaos) plus crash-**restart** at the server: the same
    /// client-side hostility, with the server itself crashing (mean up-time
    /// `400s / intensity`) and rejoining after write-ahead-log replay. Used
    /// by the `repro faults` restart cells and the simcheck restart matrix.
    #[must_use]
    pub fn chaos_restart(intensity: f64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let server_crash_mean = if intensity > 0.0 {
            SimDuration::from_secs_f64(400.0 / intensity)
        } else {
            SimDuration::ZERO
        };
        FaultConfig {
            mean_time_to_server_crash: server_crash_mean,
            ..FaultConfig::chaos(intensity)
        }
    }

    /// Checks the fault knobs for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(ConfigError::new(
                "faults.loss_probability",
                "must be within [0, 1]",
            ));
        }
        if self.slow_disk_factor < 1.0 || !self.slow_disk_factor.is_finite() {
            return Err(ConfigError::new(
                "faults.slow_disk_factor",
                "must be at least 1",
            ));
        }
        if !self.mean_time_to_slow_disk.is_zero() && self.slow_disk_duration.is_zero() {
            return Err(ConfigError::new(
                "faults.slow_disk_duration",
                "episodes are enabled but have zero length",
            ));
        }
        if self.max_retries > 0 && self.retry_backoff_base.is_zero() {
            return Err(ConfigError::new(
                "faults.retry_backoff_base",
                "retries are enabled but the backoff base is zero",
            ));
        }
        if self.retry_backoff_cap < self.retry_backoff_base {
            return Err(ConfigError::new(
                "faults.retry_backoff_cap",
                "cap must be at least the base",
            ));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss_probability: 0.0,
            max_delay_jitter: SimDuration::ZERO,
            mean_time_to_crash: SimDuration::ZERO,
            mean_time_to_server_crash: SimDuration::ZERO,
            mean_recovery_time: SimDuration::from_secs(60),
            mean_time_to_slow_disk: SimDuration::ZERO,
            slow_disk_duration: SimDuration::from_secs(20),
            slow_disk_factor: 4.0,
            callback_lease: SimDuration::from_secs(5),
            retry_backoff_base: SimDuration::from_millis(500),
            retry_backoff_cap: SimDuration::from_secs(8),
            max_retries: 3,
        }
    }
}

/// Run control: duration, warm-up, seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Simulated time to generate transactions for.
    pub duration: SimDuration,
    /// Initial period excluded from all statistics (cold caches).
    pub warmup: SimDuration,
    /// Master PRNG seed; identical seeds give bit-identical runs.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Checks the run-control fields for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.duration.is_zero() {
            return Err(ConfigError::new("runtime.duration", "must be positive"));
        }
        if self.warmup >= self.duration {
            return Err(ConfigError::new(
                "runtime.warmup",
                "warm-up must be shorter than the run",
            ));
        }
        Ok(())
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            duration: SimDuration::from_secs(2_000),
            warmup: SimDuration::from_secs(200),
            seed: 0x5173_5e1e_c7ed_b001,
        }
    }
}

/// The complete description of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Which system model to run.
    pub system: SystemKind,
    /// Number of client workstations.
    pub clients: u16,
    /// Database shape.
    pub database: DatabaseConfig,
    /// Server resources.
    pub server: ServerConfig,
    /// Per-client resources.
    pub client: ClientConfig,
    /// CPU calibration.
    pub cpu: CpuConfig,
    /// Network model.
    pub network: NetworkConfig,
    /// Workload generation.
    pub workload: WorkloadConfig,
    /// Load-sharing knobs.
    pub load_sharing: LoadSharingConfig,
    /// Fault injection and failure handling (off by default).
    pub faults: FaultConfig,
    /// Run control.
    pub runtime: RuntimeConfig,
}

impl ExperimentConfig {
    /// The paper's Table 1 parameterization for `system` with `clients`
    /// clients and the given per-access update probability.
    ///
    /// # Example
    ///
    /// ```
    /// use siteselect_types::{ExperimentConfig, SystemKind};
    /// let cfg = ExperimentConfig::paper(SystemKind::Centralized, 20, 0.01);
    /// assert_eq!(cfg.server.buffer_objects, 5_000);
    /// let cfg = ExperimentConfig::paper(SystemKind::ClientServer, 20, 0.01);
    /// assert_eq!(cfg.server.buffer_objects, 1_000);
    /// ```
    #[must_use]
    pub fn paper(system: SystemKind, clients: u16, update_fraction: f64) -> Self {
        let server = match system {
            SystemKind::Centralized => ServerConfig::centralized(),
            SystemKind::ClientServer | SystemKind::LoadSharing => ServerConfig::client_server(),
        };
        ExperimentConfig {
            system,
            clients,
            database: DatabaseConfig::default(),
            server,
            client: ClientConfig::default(),
            cpu: CpuConfig::default(),
            network: NetworkConfig::default(),
            workload: WorkloadConfig {
                update_fraction,
                ..WorkloadConfig::default()
            },
            load_sharing: LoadSharingConfig::default(),
            faults: FaultConfig::default(),
            runtime: RuntimeConfig::default(),
        }
    }

    /// Returns a copy with a different seed (for multi-seed replications).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.runtime.seed = seed;
        self
    }

    /// Checks every field for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, identifying the offending
    /// field and the constraint it violates.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn fraction(field: &'static str, v: f64) -> Result<(), ConfigError> {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::new(field, format!("{v} must be within [0, 1]")));
            }
            Ok(())
        }
        if self.clients == 0 {
            return Err(ConfigError::new("clients", "must be at least 1"));
        }
        if self.database.num_objects == 0 {
            return Err(ConfigError::new("database.num_objects", "must be positive"));
        }
        if self.database.object_size_bytes == 0 {
            return Err(ConfigError::new(
                "database.object_size_bytes",
                "must be positive",
            ));
        }
        if self.server.buffer_objects == 0 {
            return Err(ConfigError::new("server.buffer_objects", "must be positive"));
        }
        if self.server.max_concurrent_txns == 0 {
            return Err(ConfigError::new(
                "server.max_concurrent_txns",
                "must be positive",
            ));
        }
        if self.client.memory_cache_objects == 0 {
            return Err(ConfigError::new(
                "client.memory_cache_objects",
                "must be positive",
            ));
        }
        if self.cpu.client_speed <= 0.0 || !self.cpu.client_speed.is_finite() {
            return Err(ConfigError::new("cpu.client_speed", "must be positive"));
        }
        if self.cpu.server_speed <= 0.0 || !self.cpu.server_speed.is_finite() {
            return Err(ConfigError::new("cpu.server_speed", "must be positive"));
        }
        if self.cpu.txn_cpu_fraction <= 0.0 || self.cpu.txn_cpu_fraction > 1.0 {
            return Err(ConfigError::new(
                "cpu.txn_cpu_fraction",
                "must be within (0, 1]",
            ));
        }
        if self.network.bandwidth_bps == 0 {
            return Err(ConfigError::new("network.bandwidth_bps", "must be positive"));
        }
        if self.workload.mean_interarrival.is_zero() {
            return Err(ConfigError::new(
                "workload.mean_interarrival",
                "must be positive",
            ));
        }
        if self.workload.mean_length.is_zero() {
            return Err(ConfigError::new("workload.mean_length", "must be positive"));
        }
        fraction("workload.update_fraction", self.workload.update_fraction)?;
        fraction(
            "workload.decomposable_fraction",
            self.workload.decomposable_fraction,
        )?;
        if self.workload.mean_objects_per_txn < 1.0 {
            return Err(ConfigError::new(
                "workload.mean_objects_per_txn",
                "must be at least 1",
            ));
        }
        let ap = &self.workload.access_pattern;
        fraction(
            "workload.access_pattern.hot_access_fraction",
            ap.hot_access_fraction,
        )?;
        if ap.hot_region_objects == 0 {
            return Err(ConfigError::new(
                "workload.access_pattern.hot_region_objects",
                "must be positive",
            ));
        }
        if ap.hot_region_objects > self.database.num_objects {
            return Err(ConfigError::new(
                "workload.access_pattern.hot_region_objects",
                "hot region cannot exceed the database size",
            ));
        }
        if !(0.0..2.0).contains(&ap.zipf_theta) {
            return Err(ConfigError::new(
                "workload.access_pattern.zipf_theta",
                "must be within [0, 2)",
            ));
        }
        if let DeadlinePolicy::ProportionalSlack { factor } = self.workload.deadline {
            if factor <= 0.0 || !factor.is_finite() {
                return Err(ConfigError::new(
                    "workload.deadline.factor",
                    "must be positive",
                ));
            }
        }
        self.faults.validate()?;
        self.runtime.validate()
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper(SystemKind::ClientServer, 20, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table_1() {
        let cfg = ExperimentConfig::paper(SystemKind::ClientServer, 60, 0.01);
        assert_eq!(cfg.database.num_objects, 10_000);
        assert_eq!(cfg.database.object_size_bytes, 2_048);
        assert_eq!(cfg.server.buffer_objects, 1_000);
        assert_eq!(cfg.client.memory_cache_objects, 500);
        assert_eq!(cfg.client.disk_cache_objects, 500);
        assert_eq!(cfg.workload.mean_interarrival, SimDuration::from_secs(10));
        assert_eq!(cfg.workload.mean_length, SimDuration::from_secs(10));
        assert_eq!(
            cfg.workload.deadline,
            DeadlinePolicy::ExponentialOffset {
                mean: SimDuration::from_secs(20)
            }
        );
        assert_eq!(cfg.workload.mean_objects_per_txn, 10.0);
        assert_eq!(cfg.workload.update_fraction, 0.01);
        assert_eq!(cfg.workload.decomposable_fraction, 0.10);
        cfg.validate().unwrap();
    }

    #[test]
    fn centralized_preset_gets_large_buffer() {
        let ce = ExperimentConfig::paper(SystemKind::Centralized, 20, 0.05);
        assert_eq!(ce.server.buffer_objects, 5_000);
        assert_eq!(ce.server.max_concurrent_txns, 100);
        ce.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_values() {
        let base = ExperimentConfig::default();

        let mut c = base.clone();
        c.clients = 0;
        assert_eq!(c.validate().unwrap_err().field(), "clients");

        let mut c = base.clone();
        c.workload.update_fraction = 1.5;
        assert_eq!(
            c.validate().unwrap_err().field(),
            "workload.update_fraction"
        );

        let mut c = base.clone();
        c.cpu.txn_cpu_fraction = 0.0;
        assert_eq!(c.validate().unwrap_err().field(), "cpu.txn_cpu_fraction");

        let mut c = base.clone();
        c.workload.access_pattern.hot_region_objects = 20_000;
        assert_eq!(
            c.validate().unwrap_err().field(),
            "workload.access_pattern.hot_region_objects"
        );

        let mut c = base.clone();
        c.runtime.warmup = c.runtime.duration;
        assert_eq!(c.validate().unwrap_err().field(), "runtime.warmup");

        let mut c = base.clone();
        c.workload.deadline = DeadlinePolicy::ProportionalSlack { factor: -1.0 };
        assert_eq!(c.validate().unwrap_err().field(), "workload.deadline.factor");

        let mut c = base;
        c.network.bandwidth_bps = 0;
        assert_eq!(c.validate().unwrap_err().field(), "network.bandwidth_bps");
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let a = ExperimentConfig::default();
        let b = a.clone().with_seed(42);
        assert_eq!(b.runtime.seed, 42);
        assert_eq!(a.system, b.system);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    fn system_labels_match_paper() {
        assert_eq!(SystemKind::Centralized.label(), "CE-RTDBS");
        assert_eq!(SystemKind::ClientServer.label(), "CS-RTDBS");
        assert_eq!(SystemKind::LoadSharing.label(), "LS-CS-RTDBS");
        assert_eq!(SystemKind::ALL.len(), 3);
    }

    #[test]
    fn fault_defaults_are_off_and_chaos_presets_validate() {
        let f = FaultConfig::default();
        assert!(!f.injects_faults());
        f.validate().unwrap();

        let chaos = FaultConfig::chaos(0.5);
        assert!(chaos.injects_faults());
        chaos.validate().unwrap();
        assert!(!FaultConfig::chaos(0.0).injects_faults());

        // chaos_restart is chaos plus a server-crash schedule; nothing else
        // may differ, so restart-off goldens stay comparable.
        let restart = FaultConfig::chaos_restart(0.5);
        assert!(restart.injects_faults());
        restart.validate().unwrap();
        assert!(!restart.mean_time_to_server_crash.is_zero());
        assert_eq!(
            FaultConfig {
                mean_time_to_server_crash: SimDuration::ZERO,
                ..restart
            },
            chaos
        );
        assert!(!FaultConfig::chaos_restart(0.0).injects_faults());
        // The server-crash knob alone flips injection on.
        let server_only = FaultConfig {
            mean_time_to_server_crash: SimDuration::from_secs(500),
            ..FaultConfig::default()
        };
        assert!(server_only.injects_faults());
        server_only.validate().unwrap();

        let mut c = ExperimentConfig::default();
        c.faults.loss_probability = 1.5;
        assert_eq!(c.validate().unwrap_err().field(), "faults.loss_probability");

        let mut c = ExperimentConfig::default();
        c.faults.slow_disk_factor = 0.5;
        assert_eq!(c.validate().unwrap_err().field(), "faults.slow_disk_factor");

        let mut c = ExperimentConfig::default();
        c.faults.retry_backoff_cap = SimDuration::ZERO;
        assert_eq!(c.validate().unwrap_err().field(), "faults.retry_backoff_cap");

        let mut c = ExperimentConfig::default();
        c.runtime.duration = SimDuration::ZERO;
        assert_eq!(c.validate().unwrap_err().field(), "runtime.duration");
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        fn assert_value_type<T: Clone + PartialEq + std::fmt::Debug + Send + Sync>() {}
        assert_value_type::<ExperimentConfig>();
        assert_value_type::<WorkloadConfig>();
        assert_value_type::<LoadSharingConfig>();
        assert_value_type::<SystemKind>();
    }
}
