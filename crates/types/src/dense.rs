//! Dense, object-indexed containers for simulator hot paths.
//!
//! The paper's database is a flat array of objects numbered `0..10_000`
//! (Table 1), so per-object state in the engines is keyed by small dense
//! integers. Hashing those ids through a `HashMap` costs a SipHash round
//! plus a probe per access; these containers index a `Vec` directly
//! instead, growing on demand to the largest id touched. Iteration order
//! is always ascending id order, which keeps every consumer deterministic
//! without the sort-the-keys dance `HashMap` forces.

use crate::ids::ObjectId;

/// A map from [`ObjectId`] to `V`, stored as a dense slot vector.
///
/// Lookups are a bounds check and an index. Memory is proportional to the
/// largest id inserted, not to the number of live entries — the intended
/// use is per-object simulator state over a fixed-size database, where the
/// id space is saturated anyway.
///
/// # Example
///
/// ```
/// use siteselect_types::{ObjectId, ObjectMap};
///
/// let mut m: ObjectMap<&str> = ObjectMap::new();
/// m.insert(ObjectId(3), "three");
/// assert_eq!(m.get(ObjectId(3)), Some(&"three"));
/// assert_eq!(m.get(ObjectId(4)), None);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> ObjectMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ObjectMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map with slots pre-allocated for ids `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(capacity, || None);
        ObjectMap { slots, len: 0 }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entry is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot(&self, id: ObjectId) -> Option<&Option<V>> {
        self.slots.get(id.index() as usize)
    }

    fn grow_to(&mut self, id: ObjectId) -> &mut Option<V> {
        let idx = id.index() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        &mut self.slots[idx]
    }

    /// Inserts `value` at `id`, returning the previous value if any.
    pub fn insert(&mut self, id: ObjectId, value: V) -> Option<V> {
        let slot = self.grow_to(id);
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the entry at `id`.
    pub fn remove(&mut self, id: ObjectId) -> Option<V> {
        let old = self
            .slots
            .get_mut(id.index() as usize)
            .and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The entry at `id`, if live.
    #[must_use]
    pub fn get(&self, id: ObjectId) -> Option<&V> {
        self.slot(id).and_then(Option::as_ref)
    }

    /// Mutable access to the entry at `id`, if live.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut V> {
        self.slots
            .get_mut(id.index() as usize)
            .and_then(Option::as_mut)
    }

    /// Mutable access to the entry at `id`, inserting `V::default()` first
    /// if the slot is empty (the `entry(..).or_default()` idiom).
    pub fn get_or_default(&mut self, id: ObjectId) -> &mut V
    where
        V: Default,
    {
        let idx = id.index() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].is_none() {
            self.slots[idx] = Some(V::default());
            self.len += 1;
        }
        self.slots[idx].as_mut().expect("slot just filled")
    }

    /// True if `id` has a live entry.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates live entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (ObjectId(i as u32), v)))
    }

    /// Live ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Keeps only the entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(ObjectId, &mut V) -> bool) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(ObjectId(i as u32), v) {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
    }

    /// Drops every entry (slot storage is kept for reuse).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }
}

impl<V> Default for ObjectMap<V> {
    fn default() -> Self {
        ObjectMap::new()
    }
}

/// A set of [`ObjectId`]s, stored as a dense bit-per-object vector.
///
/// # Example
///
/// ```
/// use siteselect_types::{ObjectId, ObjectSet};
///
/// let mut s = ObjectSet::new();
/// assert!(s.insert(ObjectId(7)));
/// assert!(!s.insert(ObjectId(7)));
/// assert!(s.contains(ObjectId(7)));
/// assert!(s.remove(ObjectId(7)));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectSet {
    bits: Vec<bool>,
    len: usize,
}

impl ObjectSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        ObjectSet::default()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `id` is a member.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.bits.get(id.index() as usize).copied().unwrap_or(false)
    }

    /// Adds `id`; returns true if it was newly inserted.
    pub fn insert(&mut self, id: ObjectId) -> bool {
        let idx = id.index() as usize;
        if idx >= self.bits.len() {
            self.bits.resize(idx + 1, false);
        }
        let fresh = !self.bits[idx];
        self.bits[idx] = true;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `id`; returns true if it was a member.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        match self.bits.get_mut(id.index() as usize) {
            Some(b) if *b => {
                *b = false;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(ObjectId(i as u32)))
    }

    /// Removes every member (bit storage is kept for reuse).
    pub fn clear(&mut self) {
        self.bits.fill(false);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m = ObjectMap::new();
        assert_eq!(m.insert(ObjectId(5), 50), None);
        assert_eq!(m.insert(ObjectId(5), 55), Some(50));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(ObjectId(5)), Some(&55));
        assert_eq!(m.remove(ObjectId(5)), Some(55));
        assert_eq!(m.remove(ObjectId(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn map_out_of_range_reads_are_safe() {
        let m: ObjectMap<u8> = ObjectMap::with_capacity(4);
        assert_eq!(m.get(ObjectId(1_000_000)), None);
        assert!(!m.contains(ObjectId(9)));
    }

    #[test]
    fn map_iterates_in_id_order() {
        let mut m = ObjectMap::new();
        for id in [9, 2, 7, 0] {
            m.insert(ObjectId(id), id);
        }
        let keys: Vec<u32> = m.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![0, 2, 7, 9]);
    }

    #[test]
    fn map_get_or_default_inserts_once() {
        let mut m: ObjectMap<Vec<u8>> = ObjectMap::new();
        m.get_or_default(ObjectId(3)).push(1);
        m.get_or_default(ObjectId(3)).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(ObjectId(3)), Some(&vec![1, 2]));
    }

    #[test]
    fn map_retain_and_clear_track_len() {
        let mut m = ObjectMap::new();
        for id in 0..6u32 {
            m.insert(ObjectId(id), id);
        }
        m.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), 3);
        assert_eq!(m.keys().count(), 3);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn set_semantics() {
        let mut s = ObjectSet::new();
        assert!(s.insert(ObjectId(3)));
        assert!(s.insert(ObjectId(1)));
        assert!(!s.insert(ObjectId(3)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![ObjectId(1), ObjectId(3)]);
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(99)));
        s.clear();
        assert!(s.is_empty());
    }
}
