//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration value, reported by
/// [`ExperimentConfig::validate`](crate::ExperimentConfig::validate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    problem: String,
}

impl ConfigError {
    /// Creates a new configuration error for `field`.
    #[must_use]
    pub fn new(field: &'static str, problem: impl Into<String>) -> Self {
        ConfigError {
            field,
            problem: problem.into(),
        }
    }

    /// The dotted path of the offending field.
    #[must_use]
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}: {}", self.field, self.problem)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_field_and_problem() {
        let e = ConfigError::new("workload.update_fraction", "must be within [0, 1]");
        let s = e.to_string();
        assert!(s.contains("workload.update_fraction"));
        assert!(s.contains("[0, 1]"));
        assert_eq!(e.field(), "workload.update_fraction");
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x", "y"));
    }
}
