//! Identifiers for database objects, sites, transactions and subtasks.

use std::fmt;


/// Identifies one fixed-size database object (one 2 KB page in the paper's
/// MiniRel-backed prototype).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Returns the raw index of this object within the database file.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Identifies one client workstation in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct ClientId(pub u16);

impl ClientId {
    /// Returns the zero-based client index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// A processing site in the cluster: the database server, a client
/// workstation, or the specialized directory server that forwards
/// client-to-client traffic in the load-sharing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SiteId {
    /// The database server (global lock table, disk-resident database).
    Server,
    /// A client workstation.
    Client(ClientId),
    /// The directory/forwarding server used by LS-CS-RTDBS so that
    /// client-to-client messages are not routed through the database server.
    Directory,
}

impl SiteId {
    /// Returns the client id if this site is a client.
    #[must_use]
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            SiteId::Client(c) => Some(c),
            _ => None,
        }
    }

    /// True if this site is the database server.
    #[must_use]
    pub fn is_server(self) -> bool {
        matches!(self, SiteId::Server)
    }
}

impl From<ClientId> for SiteId {
    fn from(c: ClientId) -> Self {
        SiteId::Client(c)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteId::Server => write!(f, "server"),
            SiteId::Client(c) => write!(f, "{c}"),
            SiteId::Directory => write!(f, "directory"),
        }
    }
}

/// Globally unique transaction identifier.
///
/// The identifier encodes the originating client in the upper 16 bits and a
/// per-client sequence number in the lower 48 bits, so ids allocated by
/// different clients never collide and the origin can be recovered without a
/// lookup.
///
/// # Example
///
/// ```
/// use siteselect_types::{ClientId, TransactionId};
///
/// let id = TransactionId::new(ClientId(7), 42);
/// assert_eq!(id.origin(), ClientId(7));
/// assert_eq!(id.sequence(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransactionId(u64);

impl TransactionId {
    const SEQ_BITS: u32 = 48;
    const SEQ_MASK: u64 = (1 << Self::SEQ_BITS) - 1;

    /// Builds a transaction id from its originating client and a per-client
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `seq` does not fit in 48 bits.
    #[must_use]
    pub fn new(origin: ClientId, seq: u64) -> Self {
        debug_assert!(seq <= Self::SEQ_MASK, "transaction sequence overflow");
        TransactionId(((origin.0 as u64) << Self::SEQ_BITS) | (seq & Self::SEQ_MASK))
    }

    /// The client at which the transaction was initiated.
    #[must_use]
    pub fn origin(self) -> ClientId {
        ClientId((self.0 >> Self::SEQ_BITS) as u16)
    }

    /// The per-client sequence number.
    #[must_use]
    pub const fn sequence(self) -> u64 {
        self.0 & Self::SEQ_MASK
    }

    /// The raw 64-bit encoding.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a transaction id from its raw encoding (inverse of
    /// [`as_u64`](Self::as_u64)).
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        TransactionId(raw)
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}.{}", self.origin().0, self.sequence())
    }
}

/// Identifies one subtask of a decomposed transaction.
///
/// Decomposition splits a transaction into independent object groups that are
/// materialized in parallel at the sites caching them (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubtaskId {
    /// The parent transaction.
    pub txn: TransactionId,
    /// Zero-based index of this subtask within the decomposition.
    pub index: u8,
}

impl fmt::Display for SubtaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.txn, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_id_encodes_origin_and_sequence() {
        for client in [0u16, 1, 99, u16::MAX] {
            for seq in [0u64, 1, 1 << 20, (1 << 48) - 1] {
                let id = TransactionId::new(ClientId(client), seq);
                assert_eq!(id.origin(), ClientId(client));
                assert_eq!(id.sequence(), seq);
            }
        }
    }

    #[test]
    fn transaction_ids_from_distinct_clients_differ() {
        let a = TransactionId::new(ClientId(1), 5);
        let b = TransactionId::new(ClientId(2), 5);
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), b.as_u64());
    }

    #[test]
    fn site_id_conversions() {
        let c = ClientId(3);
        let s: SiteId = c.into();
        assert_eq!(s.as_client(), Some(c));
        assert!(!s.is_server());
        assert!(SiteId::Server.is_server());
        assert_eq!(SiteId::Server.as_client(), None);
        assert_eq!(SiteId::Directory.as_client(), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(ObjectId(9).to_string(), "obj#9");
        assert_eq!(ClientId(2).to_string(), "client#2");
        assert_eq!(SiteId::Server.to_string(), "server");
        assert_eq!(TransactionId::new(ClientId(2), 7).to_string(), "txn#2.7");
        let st = SubtaskId {
            txn: TransactionId::new(ClientId(2), 7),
            index: 1,
        };
        assert_eq!(st.to_string(), "txn#2.7[1]");
    }

    #[test]
    fn ordering_follows_sequence_within_client() {
        let a = TransactionId::new(ClientId(1), 5);
        let b = TransactionId::new(ClientId(1), 6);
        assert!(a < b);
    }
}
