//! Simulated time: instants and durations with microsecond resolution.
//!
//! The discrete-event simulator measures time in whole microseconds. Using a
//! fixed-point integer representation (rather than `f64` seconds) keeps event
//! ordering exact and makes runs bit-reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};


/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated clock, in microseconds since the start of the
/// run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// a later time from an earlier one saturates to a zero duration rather than
/// panicking; use [`SimTime::checked_duration_since`] when the distinction
/// matters.
///
/// # Example
///
/// ```
/// use siteselect_types::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1_500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use siteselect_types::SimDuration;
///
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_micros(), 2_500_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a microsecond count.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from a whole-second count.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Returns the microsecond count since the start of the run.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Elapsed duration since `earlier`, or `None` if `earlier > self`.
    #[must_use]
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating for non-finite or out-of-range input.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let micros = secs * MICROS_PER_SEC as f64;
        if !micros.is_finite() || micros >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(micros.round() as u64)
        }
    }

    /// Returns the microsecond count.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, rounding to microseconds.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Divides by a positive float, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `k` is not strictly positive.
    #[must_use]
    pub fn div_f64(self, k: f64) -> SimDuration {
        debug_assert!(k > 0.0, "division of SimDuration by non-positive {k}");
        SimDuration::from_secs_f64(self.as_secs_f64() / k)
    }

    /// Subtraction that saturates at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(SimTime::from_secs(14) - t, d);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::ZERO.duration_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::ZERO.checked_duration_since(SimTime::from_secs(1)),
            None
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.1), SimDuration::from_secs(1));
        assert_eq!(d.div_f64(2.0), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_millis_for_test(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }
}
