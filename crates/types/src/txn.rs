//! Transaction descriptions and outcomes.
//!
//! A [`TransactionSpec`] is the complete, workload-generated description of a
//! real-time transaction: which objects it touches (and whether it writes
//! them), how much processing it needs, when it arrived and by when it must
//! commit. All three system models consume the same specs so that
//! configurations are compared on identical workloads.

use std::collections::BTreeMap;


use crate::ids::{ClientId, ObjectId, TransactionId};
use crate::lock::LockMode;
use crate::time::{SimDuration, SimTime};

/// One object access within a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessSpec {
    /// The object read or written.
    pub object: ObjectId,
    /// True if the access updates the object (requires an exclusive lock).
    pub write: bool,
}

impl AccessSpec {
    /// Shorthand constructor for a read access.
    #[must_use]
    pub fn read(object: ObjectId) -> Self {
        AccessSpec {
            object,
            write: false,
        }
    }

    /// Shorthand constructor for a write access.
    #[must_use]
    pub fn write(object: ObjectId) -> Self {
        AccessSpec {
            object,
            write: true,
        }
    }

    /// The lock mode this access requires.
    #[must_use]
    pub fn mode(self) -> LockMode {
        LockMode::for_write(self.write)
    }
}

/// A complete real-time transaction description.
///
/// # Example
///
/// ```
/// use siteselect_types::{AccessSpec, ClientId, ObjectId, SimDuration, SimTime, TransactionId,
///                        TransactionSpec};
///
/// let spec = TransactionSpec {
///     id: TransactionId::new(ClientId(0), 1),
///     origin: ClientId(0),
///     arrival: SimTime::from_secs(5),
///     deadline: SimTime::from_secs(25),
///     cpu_demand: SimDuration::from_secs(1),
///     accesses: vec![AccessSpec::read(ObjectId(3)), AccessSpec::write(ObjectId(9))],
///     decomposable: false,
/// };
/// assert!(spec.is_update());
/// assert_eq!(spec.objects().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionSpec {
    /// Globally unique id (encodes the origin).
    pub id: TransactionId,
    /// Client at which the transaction was initiated.
    pub origin: ClientId,
    /// Submission instant.
    pub arrival: SimTime,
    /// Absolute completion deadline; the transaction counts as successful
    /// only if it commits at or before this instant.
    pub deadline: SimTime,
    /// Pure processing demand (the prototype burned CPU for this long).
    pub cpu_demand: SimDuration,
    /// The object accesses, deduplicated per object with writes dominating.
    pub accesses: Vec<AccessSpec>,
    /// True if the transaction can be decomposed into independent subtasks
    /// (10% of transactions in the paper's workload).
    pub decomposable: bool,
}

impl TransactionSpec {
    /// True if the transaction writes at least one object.
    #[must_use]
    pub fn is_update(&self) -> bool {
        self.accesses.iter().any(|a| a.write)
    }

    /// Iterates over the accessed object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.accesses.iter().map(|a| a.object)
    }

    /// Iterates over the written object ids.
    pub fn write_set(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.accesses.iter().filter(|a| a.write).map(|a| a.object)
    }

    /// Iterates over the read-only object ids.
    pub fn read_set(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.accesses.iter().filter(|a| !a.write).map(|a| a.object)
    }

    /// The lock mode the transaction needs on `object`, if it accesses it.
    #[must_use]
    pub fn required_mode(&self, object: ObjectId) -> Option<LockMode> {
        self.accesses
            .iter()
            .filter(|a| a.object == object)
            .map(|a| a.mode())
            .fold(None, |acc, m| Some(acc.map_or(m, |a: LockMode| a.stronger(m))))
    }

    /// Remaining slack until the deadline, saturating at zero.
    #[must_use]
    pub fn slack(&self, now: SimTime) -> SimDuration {
        self.deadline.duration_since(now)
    }

    /// True if the deadline has already passed at `now`.
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        now > self.deadline
    }

    /// Normalizes the access list: one entry per object, `write` if any
    /// access to that object writes, sorted by object id for determinism.
    pub fn normalize_accesses(&mut self) {
        let mut map: BTreeMap<ObjectId, bool> = BTreeMap::new();
        for a in &self.accesses {
            let e = map.entry(a.object).or_insert(false);
            *e |= a.write;
        }
        self.accesses = map
            .into_iter()
            .map(|(object, write)| AccessSpec { object, write })
            .collect();
    }

    /// Splits the access list into `k` contiguous, non-empty groups, used by
    /// transaction decomposition. Returns fewer than `k` groups if there are
    /// not enough accesses.
    #[must_use]
    pub fn partition_accesses(&self, k: usize) -> Vec<Vec<AccessSpec>> {
        if self.accesses.is_empty() || k == 0 {
            return Vec::new();
        }
        let k = k.min(self.accesses.len());
        let base = self.accesses.len() / k;
        let extra = self.accesses.len() % k;
        let mut out = Vec::with_capacity(k);
        let mut idx = 0;
        for g in 0..k {
            let len = base + usize::from(g < extra);
            out.push(self.accesses[idx..idx + len].to_vec());
            idx += len;
        }
        out
    }
}

/// Reason a transaction was aborted before its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Its lock request would have closed a cycle in the wait-for graph.
    Deadlock,
    /// It was dropped because its deadline passed before completion.
    Expired,
    /// A subtask of a decomposed transaction missed the deadline, failing
    /// the whole transaction (paper §3.2).
    SubtaskFailure,
    /// The run ended while the transaction was still in flight.
    Shutdown,
    /// Its site crashed (fault injection) while it was in flight, or it
    /// arrived at a crashed site. Counted as a deadline miss.
    SiteCrash,
}

/// Final disposition of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnOutcome {
    /// Committed at or before its deadline.
    Committed,
    /// Committed, but after the deadline (counts as a miss; only possible
    /// when late execution is permitted by configuration).
    CommittedLate,
    /// Never completed.
    Aborted(AbortReason),
}

impl TxnOutcome {
    /// True if the transaction met its real-time constraint — the paper's
    /// headline success metric.
    #[must_use]
    pub fn met_deadline(self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(accesses: Vec<AccessSpec>) -> TransactionSpec {
        TransactionSpec {
            id: TransactionId::new(ClientId(0), 0),
            origin: ClientId(0),
            arrival: SimTime::from_secs(1),
            deadline: SimTime::from_secs(4),
            cpu_demand: SimDuration::from_secs(1),
            accesses,
            decomposable: false,
        }
    }

    #[test]
    fn read_write_classification() {
        let t = spec(vec![AccessSpec::read(ObjectId(1)), AccessSpec::write(ObjectId(2))]);
        assert!(t.is_update());
        assert_eq!(t.read_set().collect::<Vec<_>>(), vec![ObjectId(1)]);
        assert_eq!(t.write_set().collect::<Vec<_>>(), vec![ObjectId(2)]);
        let q = spec(vec![AccessSpec::read(ObjectId(1))]);
        assert!(!q.is_update());
    }

    #[test]
    fn required_mode_takes_strongest() {
        let t = spec(vec![AccessSpec::read(ObjectId(1)), AccessSpec::write(ObjectId(1))]);
        assert_eq!(t.required_mode(ObjectId(1)), Some(LockMode::Exclusive));
        assert_eq!(t.required_mode(ObjectId(9)), None);
    }

    #[test]
    fn normalize_deduplicates_and_sorts() {
        let mut t = spec(vec![
            AccessSpec::read(ObjectId(5)),
            AccessSpec::write(ObjectId(2)),
            AccessSpec::write(ObjectId(5)),
            AccessSpec::read(ObjectId(2)),
        ]);
        t.normalize_accesses();
        assert_eq!(
            t.accesses,
            vec![AccessSpec::write(ObjectId(2)), AccessSpec::write(ObjectId(5))]
        );
    }

    #[test]
    fn slack_and_expiry() {
        let t = spec(vec![]);
        assert_eq!(t.slack(SimTime::from_secs(2)), SimDuration::from_secs(2));
        assert_eq!(t.slack(SimTime::from_secs(9)), SimDuration::ZERO);
        assert!(!t.is_expired(SimTime::from_secs(4)));
        assert!(t.is_expired(SimTime::from_secs(5)));
    }

    #[test]
    fn partition_covers_all_accesses_in_order() {
        let accesses: Vec<_> = (0..10).map(|i| AccessSpec::read(ObjectId(i))).collect();
        let t = spec(accesses.clone());
        for k in 1..=12 {
            let parts = t.partition_accesses(k);
            assert!(parts.len() <= k.clamp(1, 10));
            assert!(parts.iter().all(|p| !p.is_empty()));
            let flat: Vec<_> = parts.into_iter().flatten().collect();
            assert_eq!(flat, accesses);
        }
        assert!(t.partition_accesses(0).is_empty());
        assert!(spec(vec![]).partition_accesses(3).is_empty());
    }

    #[test]
    fn outcome_success_classification() {
        assert!(TxnOutcome::Committed.met_deadline());
        assert!(!TxnOutcome::CommittedLate.met_deadline());
        assert!(!TxnOutcome::Aborted(AbortReason::Deadlock).met_deadline());
        assert!(!TxnOutcome::Aborted(AbortReason::Expired).met_deadline());
    }
}
