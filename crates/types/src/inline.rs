//! A small-vector with inline storage for its first `N` elements.
//!
//! Hot-path lists in this workspace almost always carry one or two entries
//! (a sole exclusive lock holder, a couple of concurrent readers, a single
//! finished CPU job), so a heap `Vec` per list pays an allocation for what
//! fits in the owner's own slot. `InlineVec` keeps the first `N` elements
//! inline and spills the rest to a `Vec` that is only allocated when the
//! list actually grows past `N`. Element order is the insertion/shift order
//! of a plain vector.

/// A vector whose first `N` elements live inline.
///
/// The element type is `Copy` for all payloads in this workspace, which
/// keeps the shifting operations trivial; mutation helpers therefore
/// require `T: Copy`.
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    len: usize,
    inline: [Option<T>; N],
    spill: Vec<T>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty list (no heap allocation).
    #[must_use]
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: std::array::from_fn(|_| None),
            spill: Vec::new(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `pos`, if in bounds.
    #[must_use]
    pub fn get(&self, pos: usize) -> Option<&T> {
        if pos >= self.len {
            None
        } else if pos < N {
            self.inline[pos].as_ref()
        } else {
            self.spill.get(pos - N)
        }
    }

    /// The first element, if any.
    #[must_use]
    pub fn first(&self) -> Option<&T> {
        self.get(0)
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len.min(N)]
            .iter()
            .filter_map(Option::as_ref)
            .chain(self.spill.iter())
    }

    /// Iterates the elements mutably, in order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.inline[..self.len.min(N)]
            .iter_mut()
            .filter_map(Option::as_mut)
            .chain(self.spill.iter_mut())
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// Copies out the element at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn get_copy(&self, pos: usize) -> T {
        assert!(pos < self.len, "index {pos} out of bounds (len {})", self.len);
        if pos < N {
            self.inline[pos].expect("in-bounds inline slot")
        } else {
            self.spill[pos - N]
        }
    }

    /// Overwrites the element at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn set(&mut self, pos: usize, value: T) {
        assert!(pos < self.len, "index {pos} out of bounds (len {})", self.len);
        if pos < N {
            self.inline[pos] = Some(value);
        } else {
            self.spill[pos - N] = value;
        }
    }

    fn truncate(&mut self, new_len: usize) {
        debug_assert!(new_len <= self.len);
        self.spill.truncate(new_len.saturating_sub(N));
        for slot in &mut self.inline[new_len.min(N)..self.len.min(N)] {
            *slot = None;
        }
        self.len = new_len;
    }

    /// Inserts `value` at `pos`, shifting later elements right.
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    pub fn insert(&mut self, pos: usize, value: T) {
        assert!(pos <= self.len, "insert position out of bounds");
        if pos >= N {
            self.spill.insert(pos - N, value);
        } else {
            if self.len >= N {
                let last = self.inline[N - 1].take().expect("full inline row");
                self.spill.insert(0, last);
            }
            let upper = self.len.min(N - 1);
            for i in (pos..upper).rev() {
                self.inline[i + 1] = self.inline[i].take();
            }
            self.inline[pos] = Some(value);
        }
        self.len += 1;
    }

    /// Removes and returns the element at `pos`, shifting later elements
    /// left.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn remove(&mut self, pos: usize) -> T {
        assert!(pos < self.len, "remove position out of bounds");
        if pos >= N {
            self.len -= 1;
            return self.spill.remove(pos - N);
        }
        let out = self.inline[pos].take().expect("in-bounds inline slot");
        for i in pos..self.len.min(N) - 1 {
            self.inline[i] = self.inline[i + 1].take();
        }
        if self.len > N {
            self.inline[N - 1] = Some(self.spill.remove(0));
        }
        self.len -= 1;
        out
    }

    /// Keeps only the elements for which `keep` returns true, preserving
    /// order. Allocation-free.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut kept = 0;
        for i in 0..self.len {
            let v = self.get_copy(i);
            if keep(&v) {
                if kept != i {
                    self.set(kept, v);
                }
                kept += 1;
            }
        }
        self.truncate(kept);
    }

    /// The elements as a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().copied().collect()
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every operation mirrored against a plain `Vec`.
    fn check_equals(iv: &InlineVec<u32, 2>, model: &[u32]) {
        assert_eq!(iv.len(), model.len());
        assert_eq!(iv.is_empty(), model.is_empty());
        assert_eq!(iv.to_vec(), model);
        assert_eq!(iv.first(), model.first());
        for (i, v) in model.iter().enumerate() {
            assert_eq!(iv.get(i), Some(v));
        }
        assert_eq!(iv.get(model.len()), None);
    }

    #[test]
    fn push_grows_through_the_spill_boundary() {
        let mut iv: InlineVec<u32, 2> = InlineVec::new();
        let mut model = Vec::new();
        for v in 0..7 {
            iv.push(v);
            model.push(v);
            check_equals(&iv, &model);
        }
    }

    #[test]
    fn insert_matches_vec_at_every_position() {
        for pos in 0..=5 {
            let mut iv: InlineVec<u32, 2> = InlineVec::new();
            let mut model = vec![10, 11, 12, 13, 14];
            for &v in &model {
                iv.push(v);
            }
            iv.insert(pos, 99);
            model.insert(pos, 99);
            check_equals(&iv, &model);
        }
    }

    #[test]
    fn remove_matches_vec_at_every_position() {
        for pos in 0..5 {
            let mut iv: InlineVec<u32, 2> = InlineVec::new();
            let mut model = vec![10, 11, 12, 13, 14];
            for &v in &model {
                iv.push(v);
            }
            assert_eq!(iv.remove(pos), model.remove(pos));
            check_equals(&iv, &model);
        }
    }

    #[test]
    fn retain_matches_vec() {
        let mut iv: InlineVec<u32, 2> = InlineVec::new();
        let mut model: Vec<u32> = (0..9).collect();
        for &v in &model {
            iv.push(v);
        }
        iv.retain(|v| v % 3 != 0);
        model.retain(|v| v % 3 != 0);
        check_equals(&iv, &model);
        iv.retain(|_| false);
        check_equals(&iv, &[]);
        // Reusable after being emptied.
        iv.push(42);
        check_equals(&iv, &[42]);
    }

    #[test]
    fn iter_mut_updates_both_regions() {
        let mut iv: InlineVec<u32, 2> = InlineVec::new();
        for v in 0..5 {
            iv.push(v);
        }
        for v in iv.iter_mut() {
            *v *= 10;
        }
        assert_eq!(iv.to_vec(), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn equality_ignores_storage_layout() {
        let mut a: InlineVec<u32, 2> = InlineVec::new();
        let mut b: InlineVec<u32, 2> = InlineVec::new();
        for v in 0..5 {
            a.push(v);
            b.push(v);
        }
        assert_eq!(a, b);
        b.push(9);
        assert_ne!(a, b);
        // Same logical contents after a removal that shifted the spill.
        b.remove(5);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_op_fuzz_against_vec_model() {
        // Deterministic xorshift; no external PRNG needed.
        let mut state = 0x9e37_79b9_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut iv: InlineVec<u32, 2> = InlineVec::new();
        let mut model: Vec<u32> = Vec::new();
        for step in 0..2000 {
            match rng() % 4 {
                0 => {
                    iv.push(step);
                    model.push(step);
                }
                1 => {
                    let pos = (rng() as usize) % (model.len() + 1);
                    iv.insert(pos, step);
                    model.insert(pos, step);
                }
                2 if !model.is_empty() => {
                    let pos = (rng() as usize) % model.len();
                    assert_eq!(iv.remove(pos), model.remove(pos));
                }
                3 => {
                    let bit = rng() % 2 == 0;
                    iv.retain(|v| (v % 2 == 0) == bit);
                    model.retain(|v| (v % 2 == 0) == bit);
                }
                _ => {}
            }
            check_equals(&iv, &model);
        }
    }
}
