//! Lock modes for the two-phase-locking variants used throughout the paper.
//!
//! The paper's systems use two lock modes (§2): *Shared* (SL) and *Exclusive*
//! (EL). A client transaction may update a cached object only while its
//! client holds an EL on it; several clients may hold SLs simultaneously.

use std::fmt;


/// A database lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared lock (SL): permits concurrent readers.
    Shared,
    /// Exclusive lock (EL): required for updates; conflicts with everything.
    Exclusive,
}

impl LockMode {
    /// True if a holder in `self` mode can coexist with a holder in `other`
    /// mode on the same object.
    ///
    /// Only `Shared`/`Shared` is compatible.
    #[must_use]
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True if holding `self` is sufficient to serve a request for `want`.
    ///
    /// An exclusive lock covers a shared request; a shared lock does not
    /// cover an exclusive request.
    #[must_use]
    pub fn covers(self, want: LockMode) -> bool {
        match (self, want) {
            (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => true,
            (LockMode::Shared, LockMode::Exclusive) => false,
        }
    }

    /// The mode required for an access: exclusive for writes, shared for
    /// reads.
    #[must_use]
    pub fn for_write(write: bool) -> LockMode {
        if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }

    /// True if this is the exclusive mode.
    #[must_use]
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::Exclusive)
    }

    /// The stronger of two modes.
    #[must_use]
    pub fn stronger(self, other: LockMode) -> LockMode {
        if self.is_exclusive() || other.is_exclusive() {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "SL"),
            LockMode::Exclusive => write!(f, "EL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    #[test]
    fn compatibility_matrix() {
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
    }

    #[test]
    fn coverage() {
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Exclusive));
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Exclusive));
    }

    #[test]
    fn mode_for_access() {
        assert_eq!(LockMode::for_write(true), Exclusive);
        assert_eq!(LockMode::for_write(false), Shared);
    }

    #[test]
    fn stronger_is_commutative_and_absorbing() {
        assert_eq!(Shared.stronger(Shared), Shared);
        assert_eq!(Shared.stronger(Exclusive), Exclusive);
        assert_eq!(Exclusive.stronger(Shared), Exclusive);
        assert_eq!(Exclusive.stronger(Exclusive), Exclusive);
    }

    #[test]
    fn display_matches_paper_abbreviations() {
        assert_eq!(Shared.to_string(), "SL");
        assert_eq!(Exclusive.to_string(), "EL");
    }
}
