//! Aggregated results of one cluster run.

use std::sync::Arc;

use siteselect_obs::TraceData;
use siteselect_sim::Ratio;

use crate::client::WorkerReport;
use crate::history::HistoryLog;
use crate::server::ServerStats;

/// The outcome of a [`Cluster::run`](crate::Cluster::run).
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Transactions generated across all clients.
    pub generated: u64,
    /// Committed at or before their deadline.
    pub in_time: u64,
    /// Committed late.
    pub late: u64,
    /// Aborted by deadlock avoidance.
    pub deadlock_aborts: u64,
    /// Abandoned on lock-wait timeout.
    pub timeouts: u64,
    /// Dropped before execution (deadline already passed).
    pub expired: u64,
    /// Clients terminated mid-run by chaos injection.
    pub terminated_clients: u64,
    /// Server-side counters.
    pub server: ServerStats,
    /// The committed-access history (serializability evidence).
    pub history: Arc<HistoryLog>,
    /// Merged per-site event trace, when tracing was enabled.
    pub trace: Option<TraceData>,
}

impl ClusterReport {
    pub(crate) fn aggregate(
        workers: &[WorkerReport],
        server: ServerStats,
        history: Arc<HistoryLog>,
        trace: Option<TraceData>,
    ) -> Self {
        let mut r = ClusterReport {
            generated: 0,
            in_time: 0,
            late: 0,
            deadlock_aborts: 0,
            timeouts: 0,
            expired: 0,
            terminated_clients: 0,
            server,
            history,
            trace,
        };
        for w in workers {
            r.generated += w.generated;
            r.in_time += w.in_time;
            r.late += w.late;
            r.deadlock_aborts += w.deadlock_aborts;
            r.timeouts += w.timeouts;
            r.expired += w.expired;
            r.terminated_clients += w.terminated;
        }
        r
    }

    /// Every generated transaction is accounted for exactly once.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        self.in_time + self.late + self.deadlock_aborts + self.timeouts + self.expired
            == self.generated
    }

    /// Percentage of transactions that met their deadline. 0.0 (never NaN)
    /// when nothing was generated, via the shared [`Ratio`] helper.
    #[must_use]
    pub fn success_percent(&self) -> f64 {
        Ratio::of(self.in_time, self.generated).percent()
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster: {}/{} in time ({:.1}%), {} late, {} deadlock, {} timeout, {} expired",
            self.in_time,
            self.generated,
            self.success_percent(),
            self.late,
            self.deadlock_aborts,
            self.timeouts,
            self.expired
        )?;
        writeln!(
            f,
            "server: {} grants, {} recalls, {} returns, {} downgrades",
            self.server.grants, self.server.recalls, self.server.returns, self.server.downgrades
        )?;
        if self.terminated_clients > 0 {
            writeln!(f, "chaos: {} clients terminated mid-run", self.terminated_clients)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_and_balance() {
        let workers = vec![
            WorkerReport {
                generated: 10,
                in_time: 7,
                late: 1,
                deadlock_aborts: 1,
                timeouts: 1,
                expired: 0,
                terminated: 0,
            },
            WorkerReport {
                generated: 5,
                in_time: 5,
                ..WorkerReport::default()
            },
        ];
        let r = ClusterReport::aggregate(
            &workers,
            ServerStats::default(),
            Arc::new(HistoryLog::new()),
            None,
        );
        assert_eq!(r.generated, 15);
        assert_eq!(r.in_time, 12);
        assert!(r.is_balanced());
        assert!((r.success_percent() - 80.0).abs() < 1e-12);
        assert!(r.to_string().contains("80.0%"));
    }

    #[test]
    fn empty_report() {
        let r = ClusterReport::aggregate(&[], ServerStats::default(), Arc::new(HistoryLog::new()), None);
        assert!(r.is_balanced());
        assert_eq!(r.success_percent(), 0.0);
    }
}
