//! A real multi-threaded mini CS-RTDBS — the workspace's analogue of the
//! paper's Solaris-threads prototype.
//!
//! Where `siteselect-core` *simulates* the three systems in virtual time,
//! this crate actually runs a client-server real-time database on OS
//! threads: a shared server (global client-granularity lock table, paged
//! file with real 2 KB pages, callback locking with downgrade, wait-for
//! deadlock avoidance) and one worker + one callback-handler thread per
//! client, communicating over mpsc channels. Deadlines are real
//! `Instant`s scaled down from the paper's parameters.
//!
//! Every committed access is recorded in a [`HistoryLog`] whose
//! [`check_serializable`](HistoryLog::check_serializable) verifies that the
//! interleaved execution was conflict-serializable — the correctness
//! property the simulator asserts by construction and this crate asserts
//! under true concurrency.
//!
//! # Example
//!
//! ```
//! use siteselect_cluster::{Cluster, ClusterConfig};
//!
//! let report = Cluster::run(ClusterConfig {
//!     clients: 3,
//!     txns_per_client: 10,
//!     ..ClusterConfig::default()
//! }).unwrap();
//! assert_eq!(report.generated, 30);
//! report.history.check_serializable().unwrap();
//! ```

pub mod client;
pub mod history;
pub mod report;
pub mod runtime;
pub mod server;
pub mod sync;

pub use history::{HistoryLog, Op, SerializabilityError};
pub use report::ClusterReport;
pub use runtime::{Cluster, ClusterChaos, ClusterConfig, ClusterError};
pub use server::SharedServer;
