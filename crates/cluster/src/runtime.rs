//! Cluster assembly: spawns the server, one worker thread and one callback
//! thread per client, runs a scaled-down Table 1 workload, and gathers the
//! report.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::unbounded;
use siteselect_sim::Prng;
use siteselect_types::{
    AccessPatternConfig, ClientId, ConfigError, DeadlinePolicy, SimDuration, WorkloadConfig,
};
use siteselect_workload::TransactionGenerator;

use crate::client::{run_transaction, scale_duration, ClientShared, WorkerReport};
use crate::history::HistoryLog;
use crate::report::ClusterReport;
use crate::server::SharedServer;

/// Configuration of a threaded cluster run.
///
/// Times are expressed in the workload's simulated units and scaled to real
/// time by `time_scale` (default: 1 simulated second → 1 real millisecond),
/// so the paper's 10 s transactions become ~10 ms of real work.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of client workstations (threads × 2).
    pub clients: u16,
    /// Database pages.
    pub db_objects: u32,
    /// Server buffer frames.
    pub server_buffer: usize,
    /// Per-client cache capacity (objects).
    pub client_cache: usize,
    /// Transactions generated per client.
    pub txns_per_client: u32,
    /// Workload shape (Table 1 semantics).
    pub workload: WorkloadConfig,
    /// Simulated-seconds → real-seconds factor.
    pub time_scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            clients: 4,
            db_objects: 256,
            server_buffer: 64,
            client_cache: 32,
            txns_per_client: 25,
            workload: WorkloadConfig {
                mean_interarrival: SimDuration::from_secs(5),
                mean_length: SimDuration::from_secs(2),
                deadline: DeadlinePolicy::ExponentialOffset {
                    mean: SimDuration::from_secs(20),
                },
                update_fraction: 0.2,
                mean_objects_per_txn: 4.0,
                decomposable_fraction: 0.0,
                access_pattern: AccessPatternConfig {
                    hot_region_objects: 64,
                    hot_access_fraction: 0.75,
                    zipf_theta: 0.95,
                },
            },
            time_scale: 0.001,
            seed: 0xC1u64 << 32 | 0x5e1e,
        }
    }
}

/// Errors surfaced by [`Cluster::run`].
#[derive(Debug)]
pub enum ClusterError {
    /// The configuration is inconsistent.
    Config(ConfigError),
    /// A worker thread panicked.
    WorkerPanicked,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(e) => write!(f, "cluster config: {e}"),
            ClusterError::WorkerPanicked => write!(f, "a cluster worker thread panicked"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Config(e) => Some(e),
            ClusterError::WorkerPanicked => None,
        }
    }
}

/// The threaded mini CS-RTDBS.
#[derive(Debug)]
pub struct Cluster;

impl Cluster {
    /// Runs the cluster to completion.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for invalid parameters;
    /// [`ClusterError::WorkerPanicked`] if a thread died.
    pub fn run(cfg: ClusterConfig) -> Result<ClusterReport, ClusterError> {
        if cfg.clients == 0 {
            return Err(ClusterError::Config(ConfigError::new(
                "clients",
                "must be at least 1",
            )));
        }
        if cfg.db_objects == 0 {
            return Err(ClusterError::Config(ConfigError::new(
                "db_objects",
                "must be positive",
            )));
        }
        if cfg.client_cache == 0 {
            return Err(ClusterError::Config(ConfigError::new(
                "client_cache",
                "must be positive",
            )));
        }
        if !(cfg.time_scale > 0.0) {
            return Err(ClusterError::Config(ConfigError::new(
                "time_scale",
                "must be positive",
            )));
        }
        if cfg.workload.access_pattern.hot_region_objects > cfg.db_objects {
            return Err(ClusterError::Config(ConfigError::new(
                "workload.access_pattern.hot_region_objects",
                "hot region cannot exceed the database size",
            )));
        }

        let mut callback_tx = Vec::new();
        let mut callback_rx = Vec::new();
        for _ in 0..cfg.clients {
            let (tx, rx) = unbounded();
            callback_tx.push(tx);
            callback_rx.push(rx);
        }
        let server = SharedServer::new(cfg.db_objects, cfg.server_buffer, callback_tx);
        let history = Arc::new(HistoryLog::new());
        let shareds: Vec<Arc<ClientShared>> = (0..cfg.clients)
            .map(|i| ClientShared::new(ClientId(i), cfg.client_cache))
            .collect();
        let root = Prng::seed_from_u64(cfg.seed);
        let start = Instant::now();

        let mut worker_reports: Vec<WorkerReport> = Vec::new();
        let result = crossbeam::scope(|scope| {
            // Callback threads.
            let mut cb_handles = Vec::new();
            for (i, rx) in callback_rx.into_iter().enumerate() {
                let shared = Arc::clone(&shareds[i]);
                let server = Arc::clone(&server);
                cb_handles.push(scope.spawn(move |_| {
                    shared.callback_loop(&rx, &server);
                }));
            }
            // Worker threads.
            let mut handles = Vec::new();
            for i in 0..cfg.clients {
                let shared = Arc::clone(&shareds[i as usize]);
                let server = Arc::clone(&server);
                let history = Arc::clone(&history);
                let cfg = cfg.clone();
                let rng = root.derive(u64::from(i) + 1);
                handles.push(scope.spawn(move |_| {
                    worker_main(&cfg, shared, &server, &history, rng, start)
                }));
            }
            let mut reports = Vec::new();
            for h in handles {
                reports.push(h.join().map_err(|_| ClusterError::WorkerPanicked)?);
            }
            // Flush caches so the store holds the final committed state,
            // then close the callback channels so the callback threads
            // drain and exit before the scope joins them.
            for shared in &shareds {
                shared.flush_all(&server);
            }
            server.close();
            Ok::<Vec<WorkerReport>, ClusterError>(reports)
        })
        .map_err(|_| ClusterError::WorkerPanicked)?;
        worker_reports.extend(result?);
        let stats = server.stats();
        Ok(ClusterReport::aggregate(&worker_reports, stats, history))
    }
}

fn worker_main(
    cfg: &ClusterConfig,
    shared: Arc<ClientShared>,
    server: &SharedServer,
    history: &HistoryLog,
    rng: Prng,
    start: Instant,
) -> WorkerReport {
    let mut gen = TransactionGenerator::new(
        shared.id,
        &cfg.workload,
        1.0, // cpu demand = full nominal length (scaled down globally)
        cfg.db_objects,
        cfg.clients,
        rng,
    );
    let mut total = WorkerReport::default();
    for _ in 0..cfg.txns_per_client {
        let spec = gen.next_txn();
        // Pace arrivals on the scaled clock.
        let due = start + scale_duration(spec.arrival.as_micros(), cfg.time_scale);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let r = run_transaction(&shared, server, history, &spec, start, cfg.time_scale);
        total.generated += r.generated;
        total.in_time += r.in_time;
        total.late += r.late;
        total.deadlock_aborts += r.deadlock_aborts;
        total.timeouts += r.timeouts;
        total.expired += r.expired;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_runs_and_is_serializable() {
        let report = Cluster::run(ClusterConfig {
            clients: 4,
            txns_per_client: 15,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert_eq!(report.generated, 60);
        assert!(report.is_balanced());
        report.history.check_serializable().unwrap();
    }

    #[test]
    fn contended_cluster_stays_serializable() {
        // Tiny hot database: heavy conflicts, callbacks and downgrades.
        let mut cfg = ClusterConfig {
            clients: 6,
            db_objects: 8,
            server_buffer: 8,
            client_cache: 8,
            txns_per_client: 30,
            ..ClusterConfig::default()
        };
        cfg.workload.access_pattern.hot_region_objects = 8;
        cfg.workload.update_fraction = 0.8;
        cfg.workload.mean_objects_per_txn = 3.0;
        cfg.workload.mean_interarrival = SimDuration::from_secs(1);
        let report = Cluster::run(cfg).unwrap();
        assert!(report.is_balanced());
        assert!(
            report.server.recalls > 0,
            "six clients hammering eight objects at 80% updates must recall locks"
        );
        report.history.check_serializable().unwrap();
    }

    #[test]
    fn store_versions_match_committed_writes() {
        let report = Cluster::run(ClusterConfig {
            clients: 3,
            txns_per_client: 10,
            ..ClusterConfig::default()
        })
        .unwrap();
        report.history.check_serializable().unwrap();
        assert!(report.is_balanced());
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = ClusterConfig {
            clients: 0,
            ..ClusterConfig::default()
        };
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
        let bad = ClusterConfig {
            time_scale: 0.0,
            ..ClusterConfig::default()
        };
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
        let mut bad = ClusterConfig::default();
        bad.workload.access_pattern.hot_region_objects = 10_000;
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
    }
}
