//! Cluster assembly: spawns the server, one worker thread and one callback
//! thread per client, runs a scaled-down Table 1 workload, and gathers the
//! report.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

use siteselect_sim::Prng;
use siteselect_types::{
    AccessPatternConfig, ClientId, ConfigError, DeadlinePolicy, SimDuration, WorkloadConfig,
};
use siteselect_workload::TransactionGenerator;

use siteselect_obs::{EventSink, TraceData};

use crate::client::{run_transaction, scale_duration, ClientShared, WorkerReport};
use crate::history::HistoryLog;
use crate::report::ClusterReport;
use crate::server::SharedServer;

/// Configuration of a threaded cluster run.
///
/// Times are expressed in the workload's simulated units and scaled to real
/// time by `time_scale` (default: 1 simulated second → 1 real millisecond),
/// so the paper's 10 s transactions become ~10 ms of real work.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of client workstations (threads × 2).
    pub clients: u16,
    /// Database pages.
    pub db_objects: u32,
    /// Server buffer frames.
    pub server_buffer: usize,
    /// Per-client cache capacity (objects).
    pub client_cache: usize,
    /// Transactions generated per client.
    pub txns_per_client: u32,
    /// Workload shape (Table 1 semantics).
    pub workload: WorkloadConfig,
    /// Simulated-seconds → real-seconds factor.
    pub time_scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Chaos-injection knobs (all off by default).
    pub chaos: ClusterChaos,
    /// Capture per-site event traces, merged by simulated time into
    /// [`ClusterReport::trace`]. Off by default; real-thread scheduling
    /// makes these traces informative but not deterministic.
    pub trace: bool,
}

/// Chaos-injection knobs for the threaded cluster. Everything defaults to
/// off; the protocol must stay serializable no matter what is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterChaos {
    /// Upper bound of a uniformly random real-time delay inserted before
    /// each lock recall is served — models slow or reordered channel
    /// delivery between the server and a client's callback thread.
    pub max_callback_delay: std::time::Duration,
    /// Probability that a client terminates mid-run: it stops submitting
    /// after a random prefix of its transactions. Its callback thread keeps
    /// answering recalls and its cache is returned by the shutdown flush
    /// (termination with a recovery agent), so the rest of the cluster can
    /// always make progress.
    pub termination_probability: f64,
}

impl ClusterChaos {
    /// True when no chaos knob is enabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.max_callback_delay.is_zero() && self.termination_probability == 0.0
    }
}

impl Default for ClusterChaos {
    fn default() -> Self {
        ClusterChaos {
            max_callback_delay: std::time::Duration::ZERO,
            termination_probability: 0.0,
        }
    }
}

impl ClusterConfig {
    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.clients == 0 {
            return Err(ConfigError::new("clients", "must be at least 1"));
        }
        if self.db_objects == 0 {
            return Err(ConfigError::new("db_objects", "must be positive"));
        }
        if self.client_cache == 0 {
            return Err(ConfigError::new("client_cache", "must be positive"));
        }
        if self.server_buffer == 0 {
            return Err(ConfigError::new("server_buffer", "must be positive"));
        }
        if self.time_scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !self.time_scale.is_finite()
        {
            return Err(ConfigError::new("time_scale", "must be positive and finite"));
        }
        if !(0.0..=1.0).contains(&self.workload.update_fraction) {
            return Err(ConfigError::new(
                "workload.update_fraction",
                "must be within [0, 1]",
            ));
        }
        if self.workload.mean_objects_per_txn.partial_cmp(&0.0)
            != Some(std::cmp::Ordering::Greater)
        {
            return Err(ConfigError::new(
                "workload.mean_objects_per_txn",
                "must be positive",
            ));
        }
        if self.workload.mean_interarrival.is_zero() {
            return Err(ConfigError::new(
                "workload.mean_interarrival",
                "must be positive",
            ));
        }
        if self.workload.access_pattern.hot_region_objects > self.db_objects {
            return Err(ConfigError::new(
                "workload.access_pattern.hot_region_objects",
                "hot region cannot exceed the database size",
            ));
        }
        if !(0.0..=1.0).contains(&self.chaos.termination_probability) {
            return Err(ConfigError::new(
                "chaos.termination_probability",
                "must be within [0, 1]",
            ));
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            clients: 4,
            db_objects: 256,
            server_buffer: 64,
            client_cache: 32,
            txns_per_client: 25,
            workload: WorkloadConfig {
                mean_interarrival: SimDuration::from_secs(5),
                mean_length: SimDuration::from_secs(2),
                deadline: DeadlinePolicy::ExponentialOffset {
                    mean: SimDuration::from_secs(20),
                },
                update_fraction: 0.2,
                mean_objects_per_txn: 4.0,
                decomposable_fraction: 0.0,
                access_pattern: AccessPatternConfig {
                    hot_region_objects: 64,
                    hot_access_fraction: 0.75,
                    zipf_theta: 0.95,
                },
            },
            time_scale: 0.001,
            seed: 0xC1u64 << 32 | 0x5e1e,
            chaos: ClusterChaos::default(),
            trace: false,
        }
    }
}

/// Errors surfaced by [`Cluster::run`].
#[derive(Debug)]
pub enum ClusterError {
    /// The configuration is inconsistent.
    Config(ConfigError),
    /// A worker thread panicked.
    WorkerPanicked,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(e) => write!(f, "cluster config: {e}"),
            ClusterError::WorkerPanicked => write!(f, "a cluster worker thread panicked"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Config(e) => Some(e),
            ClusterError::WorkerPanicked => None,
        }
    }
}

/// The threaded mini CS-RTDBS.
#[derive(Debug)]
pub struct Cluster;

impl Cluster {
    /// Runs the cluster to completion.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for invalid parameters;
    /// [`ClusterError::WorkerPanicked`] if a thread died.
    pub fn run(cfg: ClusterConfig) -> Result<ClusterReport, ClusterError> {
        cfg.validate().map_err(ClusterError::Config)?;

        let mut callback_tx = Vec::new();
        let mut callback_rx = Vec::new();
        for _ in 0..cfg.clients {
            let (tx, rx) = channel();
            callback_tx.push(tx);
            callback_rx.push(rx);
        }
        let server = SharedServer::new(cfg.db_objects, cfg.server_buffer, callback_tx);
        let history = Arc::new(HistoryLog::new());
        let shareds: Vec<Arc<ClientShared>> = (0..cfg.clients)
            .map(|i| ClientShared::new(ClientId(i), cfg.client_cache))
            .collect();
        let root = Prng::seed_from_u64(cfg.seed);
        let start = Instant::now();

        // One sink per worker thread: emissions stay lock-uncontended and
        // the site-local buffers are merged by simulated time at shutdown.
        let sinks: Vec<EventSink> = (0..cfg.clients)
            .map(|_| {
                if cfg.trace {
                    EventSink::enabled(TRACE_CAPACITY_PER_SITE)
                } else {
                    EventSink::disabled()
                }
            })
            .collect();
        let worker_reports: Vec<WorkerReport> = std::thread::scope(|scope| {
            // Callback threads.
            let chaos_delay = cfg.chaos.max_callback_delay;
            let mut cb_handles = Vec::new();
            for (i, rx) in callback_rx.into_iter().enumerate() {
                let shared = Arc::clone(&shareds[i]);
                let server = Arc::clone(&server);
                let mut rng = root.derive(0xCB_0000 + i as u64);
                cb_handles.push(scope.spawn(move || {
                    if chaos_delay.is_zero() {
                        shared.callback_loop(&rx, &server);
                    } else {
                        shared.callback_loop_jittered(&rx, &server, chaos_delay, &mut rng);
                    }
                }));
            }
            // Worker threads. A chaos-terminated client submits only a
            // random prefix of its transaction quota.
            let mut handles = Vec::new();
            for i in 0..cfg.clients {
                let shared = Arc::clone(&shareds[i as usize]);
                let server = Arc::clone(&server);
                let history = Arc::clone(&history);
                let cfg = cfg.clone();
                let rng = root.derive(u64::from(i) + 1);
                let mut chaos_rng = root.derive(0xC0A5_0000 + u64::from(i));
                let quota = if cfg.txns_per_client > 0
                    && chaos_rng.bernoulli(cfg.chaos.termination_probability)
                {
                    chaos_rng.below(u64::from(cfg.txns_per_client)) as u32
                } else {
                    cfg.txns_per_client
                };
                let sink = sinks[i as usize].clone();
                handles.push(scope.spawn(move || {
                    worker_main(&cfg, shared, &server, &history, rng, start, quota, &sink)
                }));
            }
            let mut reports = Vec::new();
            let mut panicked = false;
            for h in handles {
                match h.join() {
                    Ok(r) => reports.push(r),
                    Err(_) => panicked = true,
                }
            }
            // Flush caches so the store holds the final committed state,
            // then close the callback channels so the callback threads
            // drain and exit before the scope joins them. This must happen
            // even when a worker panicked, otherwise the callback threads
            // would block the scope forever.
            for shared in &shareds {
                shared.flush_all(&server);
            }
            server.close();
            for h in cb_handles {
                let _ = h.join();
            }
            if panicked {
                Err(ClusterError::WorkerPanicked)
            } else {
                Ok(reports)
            }
        })?;
        let stats = server.stats();
        let trace = cfg
            .trace
            .then(|| TraceData::merge(sinks.iter().filter_map(EventSink::finish).collect()));
        Ok(ClusterReport::aggregate(&worker_reports, stats, history, trace))
    }
}

/// Ring capacity of each worker's trace buffer: generously above any
/// realistic per-client event volume (a few events per transaction).
const TRACE_CAPACITY_PER_SITE: usize = 1 << 16;

// Worker threads are wired up once, at spawn; a config struct would only
// repackage these nine values for a single call site.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    cfg: &ClusterConfig,
    shared: Arc<ClientShared>,
    server: &SharedServer,
    history: &HistoryLog,
    rng: Prng,
    start: Instant,
    quota: u32,
    sink: &EventSink,
) -> WorkerReport {
    let mut gen = TransactionGenerator::new(
        shared.id,
        &cfg.workload,
        1.0, // cpu demand = full nominal length (scaled down globally)
        cfg.db_objects,
        cfg.clients,
        rng,
    );
    let mut total = WorkerReport {
        terminated: u64::from(quota < cfg.txns_per_client),
        ..WorkerReport::default()
    };
    for _ in 0..quota {
        let spec = gen.next_txn();
        // Pace arrivals on the scaled clock.
        let due = start + scale_duration(spec.arrival.as_micros(), cfg.time_scale);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let r = run_transaction(&shared, server, history, &spec, start, cfg.time_scale, sink);
        total.generated += r.generated;
        total.in_time += r.in_time;
        total.late += r.late;
        total.deadlock_aborts += r.deadlock_aborts;
        total.timeouts += r.timeouts;
        total.expired += r.expired;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_runs_and_is_serializable() {
        let report = Cluster::run(ClusterConfig {
            clients: 4,
            txns_per_client: 15,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert_eq!(report.generated, 60);
        assert!(report.is_balanced());
        report.history.check_serializable().unwrap();
    }

    #[test]
    fn contended_cluster_stays_serializable() {
        // Tiny hot database: heavy conflicts, callbacks and downgrades.
        let mut cfg = ClusterConfig {
            clients: 6,
            db_objects: 8,
            server_buffer: 8,
            client_cache: 8,
            txns_per_client: 30,
            ..ClusterConfig::default()
        };
        cfg.workload.access_pattern.hot_region_objects = 8;
        cfg.workload.update_fraction = 0.8;
        cfg.workload.mean_objects_per_txn = 3.0;
        cfg.workload.mean_interarrival = SimDuration::from_secs(1);
        let report = Cluster::run(cfg).unwrap();
        assert!(report.is_balanced());
        assert!(
            report.server.recalls > 0,
            "six clients hammering eight objects at 80% updates must recall locks"
        );
        report.history.check_serializable().unwrap();
    }

    #[test]
    fn store_versions_match_committed_writes() {
        let report = Cluster::run(ClusterConfig {
            clients: 3,
            txns_per_client: 10,
            ..ClusterConfig::default()
        })
        .unwrap();
        report.history.check_serializable().unwrap();
        assert!(report.is_balanced());
    }

    #[test]
    fn chaotic_cluster_stays_serializable() {
        // Delayed recall delivery + mid-run client termination on a hot
        // contended database: the worst interleavings we can provoke must
        // still be conflict-serializable and fully accounted.
        let mut cfg = ClusterConfig {
            clients: 6,
            db_objects: 8,
            server_buffer: 8,
            client_cache: 8,
            txns_per_client: 25,
            chaos: ClusterChaos {
                max_callback_delay: std::time::Duration::from_millis(3),
                termination_probability: 0.5,
            },
            ..ClusterConfig::default()
        };
        cfg.workload.access_pattern.hot_region_objects = 8;
        cfg.workload.update_fraction = 0.8;
        cfg.workload.mean_objects_per_txn = 3.0;
        cfg.workload.mean_interarrival = SimDuration::from_secs(1);
        let report = Cluster::run(cfg).unwrap();
        assert!(report.is_balanced());
        // Conservation under chaos: the failure breakdown exactly covers
        // what was submitted but not committed on time — chaos must not
        // create, lose or double-count a transaction.
        assert_eq!(
            report.late + report.deadlock_aborts + report.timeouts + report.expired,
            report.generated - report.in_time,
            "failure breakdown out of balance with submissions"
        );
        // Termination draws are seed-deterministic: with p = 0.5 over six
        // clients this seed terminates at least one.
        assert!(report.terminated_clients > 0, "no client terminated");
        assert!(
            report.generated < 6 * 25,
            "terminated clients must submit fewer transactions"
        );
        report.history.check_serializable().unwrap();
    }

    #[test]
    fn chaos_outcome_counts_are_pinned() {
        // Golden parity for the fault path (same idea as
        // tests/golden_parity.rs): the termination draws and per-client
        // quotas derive purely from the seed, so the submission counts of
        // a chaotic run are exact. Wall-clock-dependent outcomes (in_time,
        // late) are deliberately not pinned. Regenerate the literals here
        // if the seed-derivation scheme changes intentionally.
        let mut cfg = ClusterConfig {
            clients: 6,
            db_objects: 8,
            server_buffer: 8,
            client_cache: 8,
            txns_per_client: 25,
            chaos: ClusterChaos {
                max_callback_delay: std::time::Duration::from_millis(1),
                termination_probability: 0.5,
            },
            ..ClusterConfig::default()
        };
        cfg.workload.access_pattern.hot_region_objects = 8;
        cfg.workload.update_fraction = 0.8;
        cfg.workload.mean_objects_per_txn = 3.0;
        cfg.workload.mean_interarrival = SimDuration::from_secs(1);
        let report = Cluster::run(cfg).unwrap();
        assert_eq!(report.terminated_clients, PINNED_TERMINATED);
        assert_eq!(report.generated, PINNED_GENERATED);
        assert!(report.is_balanced());
    }

    const PINNED_TERMINATED: u64 = 3;
    const PINNED_GENERATED: u64 = 77;

    #[test]
    fn traced_cluster_captures_merged_lifecycles() {
        let report = Cluster::run(ClusterConfig {
            clients: 3,
            txns_per_client: 10,
            trace: true,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert!(report.is_balanced());
        let trace = report.trace.as_ref().expect("tracing was enabled");
        // Every generated transaction submits exactly once, and every
        // commit in the report has a matching trace event.
        assert_eq!(trace.report.kind_count("txn_submit"), report.generated);
        assert_eq!(
            trace.report.kind_count("commit"),
            report.in_time + report.late
        );
        // The merge is globally ordered by simulated time.
        assert!(trace
            .records
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn untraced_cluster_reports_no_trace() {
        let report = Cluster::run(ClusterConfig {
            clients: 2,
            txns_per_client: 5,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert!(report.trace.is_none());
    }

    #[test]
    fn chaos_validation_rejects_bad_probability() {
        let mut bad = ClusterConfig::default();
        bad.chaos.termination_probability = 1.5;
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = ClusterConfig {
            clients: 0,
            ..ClusterConfig::default()
        };
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
        let bad = ClusterConfig {
            time_scale: 0.0,
            ..ClusterConfig::default()
        };
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
        let mut bad = ClusterConfig::default();
        bad.workload.access_pattern.hot_region_objects = 10_000;
        assert!(matches!(Cluster::run(bad), Err(ClusterError::Config(_))));
    }
}
