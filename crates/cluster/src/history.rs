//! Commit-history recording and conflict-serializability checking.
//!
//! Every object carries a version counter in its first page word. Readers
//! record the version they observed; writers record the version transition
//! they performed. The checker rebuilds the per-object version order and
//! verifies that the induced precedence graph over transactions is acyclic
//! — the standard conflict-serializability test.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::sync::Mutex;
use siteselect_types::{ObjectId, TransactionId};

/// One recorded access by a committed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The transaction read the object at this version.
    Read {
        /// Reader.
        txn: TransactionId,
        /// Object read.
        object: ObjectId,
        /// Version observed.
        version: u64,
    },
    /// The transaction advanced the object from `from` to `from + 1`.
    Write {
        /// Writer.
        txn: TransactionId,
        /// Object written.
        object: ObjectId,
        /// Version it replaced.
        from: u64,
    },
}

impl Op {
    /// The object this operation touched.
    #[must_use]
    pub fn object(&self) -> ObjectId {
        match *self {
            Op::Read { object, .. } | Op::Write { object, .. } => object,
        }
    }
}

/// Why a history failed the serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializabilityError {
    /// Two committed writers claim the same version transition.
    ConflictingWrites {
        /// Object with the duplicate transition.
        object: ObjectId,
        /// Version written twice.
        version: u64,
    },
    /// The precedence graph has a cycle through this transaction.
    Cycle {
        /// A transaction on the cycle.
        witness: TransactionId,
    },
}

impl fmt::Display for SerializabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializabilityError::ConflictingWrites { object, version } => {
                write!(f, "two committed writes produced version {version} of {object}")
            }
            SerializabilityError::Cycle { witness } => {
                write!(f, "precedence cycle through {witness}")
            }
        }
    }
}

impl std::error::Error for SerializabilityError {}

/// A thread-safe log of committed accesses.
#[derive(Debug, Default)]
pub struct HistoryLog {
    ops: Mutex<Vec<Op>>,
}

impl HistoryLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        HistoryLog::default()
    }

    /// Appends the committed accesses of one transaction atomically.
    pub fn commit(&self, ops: impl IntoIterator<Item = Op>) {
        self.ops.lock().extend(ops);
    }

    /// Number of recorded operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.lock().len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.lock().is_empty()
    }

    /// Snapshot of the recorded operations.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Op> {
        self.ops.lock().clone()
    }

    /// Verifies conflict-serializability of the recorded history.
    ///
    /// # Errors
    ///
    /// Returns the violation found: duplicate version transitions or a
    /// cycle in the precedence graph.
    pub fn check_serializable(&self) -> Result<(), SerializabilityError> {
        let ops = self.snapshot();
        check_ops(&ops)
    }
}

/// Checks an explicit operation list (exposed for tests and tools).
///
/// # Errors
///
/// See [`HistoryLog::check_serializable`].
pub fn check_ops(ops: &[Op]) -> Result<(), SerializabilityError> {
    // Writer of each (object, version-produced).
    let mut writer_of: HashMap<(ObjectId, u64), TransactionId> = HashMap::new();
    for op in ops {
        if let Op::Write { txn, object, from } = *op {
            if let Some(prev) = writer_of.insert((object, from + 1), txn) {
                if prev != txn {
                    return Err(SerializabilityError::ConflictingWrites {
                        object,
                        version: from + 1,
                    });
                }
            }
        }
    }
    // Precedence edges.
    let mut edges: HashMap<TransactionId, HashSet<TransactionId>> = HashMap::new();
    let mut add = |a: TransactionId, b: TransactionId| {
        if a != b {
            edges.entry(a).or_default().insert(b);
        }
    };
    for op in ops {
        match *op {
            Op::Read {
                txn,
                object,
                version,
            } => {
                // Writer of `version` precedes the reader...
                if version > 0 {
                    if let Some(&w) = writer_of.get(&(object, version)) {
                        add(w, txn);
                    }
                }
                // ...and the reader precedes the writer of `version + 1`.
                if let Some(&w) = writer_of.get(&(object, version + 1)) {
                    add(txn, w);
                }
            }
            Op::Write { txn, object, from } => {
                if from > 0 {
                    if let Some(&w) = writer_of.get(&(object, from)) {
                        add(w, txn);
                    }
                }
            }
        }
    }
    // Cycle detection: iterative DFS with colors.
    let mut color: HashMap<TransactionId, u8> = HashMap::new(); // 1 = on stack, 2 = done
    let nodes: Vec<TransactionId> = edges.keys().copied().collect();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(TransactionId, Vec<TransactionId>)> = vec![(
            start,
            edges.get(&start).map(|s| s.iter().copied().collect()).unwrap_or_default(),
        )];
        color.insert(start, 1);
        while let Some((node, children)) = stack.last_mut() {
            match children.pop() {
                Some(next) => match color.get(&next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        let kids = edges
                            .get(&next)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        stack.push((next, kids));
                    }
                    1 => return Err(SerializabilityError::Cycle { witness: next }),
                    _ => {}
                },
                None => {
                    color.insert(*node, 2);
                    stack.pop();
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use siteselect_types::ClientId;

    fn t(n: u64) -> TransactionId {
        TransactionId::new(ClientId(0), n)
    }
    const O1: ObjectId = ObjectId(1);
    const O2: ObjectId = ObjectId(2);

    #[test]
    fn empty_history_is_serializable() {
        let log = HistoryLog::new();
        assert!(log.is_empty());
        log.check_serializable().unwrap();
    }

    #[test]
    fn sequential_writes_are_serializable() {
        let ops = vec![
            Op::Write { txn: t(1), object: O1, from: 0 },
            Op::Write { txn: t(2), object: O1, from: 1 },
            Op::Read { txn: t(3), object: O1, version: 2 },
        ];
        check_ops(&ops).unwrap();
    }

    #[test]
    fn duplicate_version_transition_detected() {
        let ops = vec![
            Op::Write { txn: t(1), object: O1, from: 0 },
            Op::Write { txn: t(2), object: O1, from: 0 },
        ];
        assert_eq!(
            check_ops(&ops),
            Err(SerializabilityError::ConflictingWrites { object: O1, version: 1 })
        );
    }

    #[test]
    fn classic_nonserializable_interleaving_detected() {
        // T1 reads O1@0 then writes O2; T2 reads O2@0 then writes O1.
        // Each must precede the other: cycle.
        let ops = vec![
            Op::Read { txn: t(1), object: O1, version: 0 },
            Op::Read { txn: t(2), object: O2, version: 0 },
            Op::Write { txn: t(1), object: O2, from: 0 },
            Op::Write { txn: t(2), object: O1, from: 0 },
        ];
        assert!(matches!(
            check_ops(&ops),
            Err(SerializabilityError::Cycle { .. })
        ));
    }

    #[test]
    fn read_your_own_write_is_fine() {
        let ops = vec![
            Op::Write { txn: t(1), object: O1, from: 0 },
            Op::Read { txn: t(1), object: O1, version: 1 },
        ];
        check_ops(&ops).unwrap();
    }

    #[test]
    fn readers_between_writers_order_correctly() {
        let ops = vec![
            Op::Write { txn: t(1), object: O1, from: 0 },
            Op::Read { txn: t(2), object: O1, version: 1 },
            Op::Write { txn: t(3), object: O1, from: 1 },
            Op::Read { txn: t(4), object: O1, version: 2 },
        ];
        check_ops(&ops).unwrap();
    }

    #[test]
    fn log_commit_and_snapshot() {
        let log = HistoryLog::new();
        log.commit(vec![Op::Read { txn: t(1), object: O1, version: 0 }]);
        log.commit(vec![Op::Write { txn: t(2), object: O1, from: 0 }]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot().len(), 2);
        log.check_serializable().unwrap();
    }

    #[test]
    fn op_object_accessor() {
        assert_eq!(Op::Read { txn: t(1), object: O2, version: 0 }.object(), O2);
    }

    #[test]
    fn error_display() {
        let e = SerializabilityError::Cycle { witness: t(9) };
        assert!(e.to_string().contains("cycle"));
        let e = SerializabilityError::ConflictingWrites { object: O1, version: 3 };
        assert!(e.to_string().contains("version 3"));
    }
}
