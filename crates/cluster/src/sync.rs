//! Thin wrappers over `std::sync` primitives with a non-poisoning API.
//!
//! The cluster deliberately keeps working when a worker thread panics (the
//! runtime reports [`ClusterError::WorkerPanicked`](crate::ClusterError)
//! instead of cascading), so every lock acquisition here recovers from
//! poisoning rather than propagating it.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutex whose `lock` recovers from poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering the data if a panicking thread
    /// poisoned it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Internally an `Option` so [`Condvar::wait`] can move the underlying
/// guard through `std`'s by-value wait API while callers keep `&mut` style.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait; mirrors `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
