//! Client workstation: a worker thread executing transactions against its
//! object cache, and a callback thread answering lock recalls.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::Receiver;

use siteselect_obs::{Event, EventSink};
use siteselect_types::{ClientId, LockMode, ObjectId, SimTime, SiteId, TransactionSpec};

use crate::sync::{Condvar, Mutex};

use crate::history::{HistoryLog, Op};
use crate::server::{AcquireError, CallbackReq, SharedServer};

/// One cached object with its real page bytes.
#[derive(Debug, Clone)]
pub struct CachedObject {
    /// Cached lock mode (the client-level lock of §2).
    pub mode: LockMode,
    /// The page contents.
    pub bytes: Vec<u8>,
    /// True if updated locally since the last return to the server.
    pub dirty: bool,
    /// Transactions currently using the object (blocks callbacks).
    pub pins: u32,
    last_used: u64,
}

/// The cache state shared by a client's worker and callback threads.
#[derive(Debug, Default)]
pub struct CacheState {
    objects: HashMap<ObjectId, CachedObject>,
    capacity: usize,
    tick: u64,
}

/// A client's shared half: the cache plus its synchronization.
pub struct ClientShared {
    /// This client's id.
    pub id: ClientId,
    state: Mutex<CacheState>,
    cv: Condvar,
}

impl ClientShared {
    /// Creates a client with an object cache of `capacity` entries.
    #[must_use]
    pub fn new(id: ClientId, capacity: usize) -> Arc<Self> {
        Arc::new(ClientShared {
            id,
            state: Mutex::new(CacheState {
                objects: HashMap::new(),
                capacity,
                tick: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Number of cached objects (tests).
    #[must_use]
    pub fn cached_count(&self) -> usize {
        self.state.lock().objects.len()
    }

    /// Pins `object` if a covering lock and the data are cached.
    fn try_pin(&self, object: ObjectId, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.objects.get_mut(&object) {
            Some(o) if o.mode.covers(mode) => {
                o.pins += 1;
                o.last_used = tick;
                true
            }
            _ => false,
        }
    }

    /// Reserves a pinned placeholder for `object` before asking the server
    /// for it. The pin makes a concurrent callback *wait* instead of
    /// concluding the object was evicted — without it, a recall racing the
    /// grant would release the just-acquired lock and allow a lost update.
    fn begin_install(&self, object: ObjectId) {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.objects
            .entry(object)
            .and_modify(|o| {
                o.pins += 1;
                o.last_used = tick;
            })
            .or_insert(CachedObject {
                mode: LockMode::Shared,
                bytes: Vec::new(),
                dirty: false,
                pins: 1,
                last_used: tick,
            });
    }

    /// Fills a reservation with the granted mode and bytes (the pin from
    /// [`begin_install`](Self::begin_install) is kept). If the cache is now
    /// over capacity, the LRU unpinned entry is evicted and returned to the
    /// server *while the cache lock is held* — dropping the lock between
    /// removal and return would let this client's own worker re-acquire the
    /// object from the server's stale copy and lose the update.
    fn finish_install(&self, object: ObjectId, mode: LockMode, bytes: Vec<u8>, server: &SharedServer) {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        let entry = st.objects.get_mut(&object).expect("reserved by begin_install");
        entry.mode = entry.mode.stronger(mode);
        entry.bytes = bytes;
        entry.dirty = false;
        entry.last_used = tick;
        if st.objects.len() <= st.capacity {
            return;
        }
        let victim = st
            .objects
            .iter()
            .filter(|(&o, c)| c.pins == 0 && o != object)
            .min_by_key(|(_, c)| c.last_used)
            .map(|(&o, _)| o);
        let Some(victim) = victim else { return };
        let evicted = st.objects.remove(&victim).expect("victim exists");
        let data = (evicted.mode == LockMode::Exclusive).then_some(evicted.bytes);
        server.return_object(self.id, victim, data.as_deref(), false);
    }

    /// Abandons a reservation after a failed acquire: unpins, and removes
    /// the entry if it was only ever a placeholder.
    fn abort_install(&self, object: ObjectId) {
        let mut st = self.state.lock();
        if let Some(o) = st.objects.get_mut(&object) {
            o.pins = o.pins.saturating_sub(1);
            if o.pins == 0 && o.bytes.is_empty() {
                st.objects.remove(&object);
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn unpin_all(&self, objects: &[ObjectId]) {
        let mut st = self.state.lock();
        for o in objects {
            if let Some(c) = st.objects.get_mut(o) {
                c.pins = c.pins.saturating_sub(1);
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Reads the version word of a pinned cached object.
    fn version(&self, object: ObjectId) -> u64 {
        let st = self.state.lock();
        let c = &st.objects[&object];
        u64::from_le_bytes(c.bytes[0..8].try_into().expect("page >= 8 bytes"))
    }

    /// Bumps the version word of a pinned cached object; returns the old
    /// version.
    fn bump_version(&self, object: ObjectId) -> u64 {
        let mut st = self.state.lock();
        let c = st.objects.get_mut(&object).expect("pinned object cached");
        let old = u64::from_le_bytes(c.bytes[0..8].try_into().expect("page >= 8 bytes"));
        c.bytes[0..8].copy_from_slice(&(old + 1).to_le_bytes());
        c.dirty = true;
        old
    }

    /// Runs a client's callback loop until the channel closes: waits for
    /// local users to unpin, then answers with a return or a downgrade.
    pub fn callback_loop(self: &Arc<Self>, rx: &Receiver<CallbackReq>, server: &SharedServer) {
        while let Ok(req) = rx.recv() {
            self.serve_callback(req, server);
        }
    }

    /// Chaos variant of [`callback_loop`](Self::callback_loop): sleeps a
    /// uniformly random real-time delay in `[0, max_delay]` before serving
    /// each recall, modelling slow or reordered channel delivery. The
    /// protocol must stay serializable no matter how long an answer takes.
    pub fn callback_loop_jittered(
        self: &Arc<Self>,
        rx: &Receiver<CallbackReq>,
        server: &SharedServer,
        max_delay: Duration,
        rng: &mut siteselect_sim::Prng,
    ) {
        let bound = u64::try_from(max_delay.as_micros()).unwrap_or(u64::MAX);
        while let Ok(req) = rx.recv() {
            if bound > 0 {
                std::thread::sleep(Duration::from_micros(rng.below(bound + 1)));
            }
            self.serve_callback(req, server);
        }
    }

    fn serve_callback(self: &Arc<Self>, req: CallbackReq, server: &SharedServer) {
        let mut st = self.state.lock();
        while st.objects.get(&req.object).is_some_and(|o| o.pins > 0) {
            self.cv.wait(&mut st);
        }
        // The answer to the server goes out while the cache lock is
        // still held: between removing our copy and the server learning
        // about it, our own worker must not be able to re-fetch the
        // object (the server would serve its stale copy).
        match st.objects.get(&req.object).cloned() {
            None => {
                // Evicted earlier: just release the lock.
                server.return_object(self.id, req.object, None, false);
            }
            Some(cached) => {
                let downgrade =
                    req.desired == LockMode::Shared && cached.mode == LockMode::Exclusive;
                let send_data = cached.mode == LockMode::Exclusive;
                if downgrade {
                    let entry = st.objects.get_mut(&req.object).expect("present");
                    entry.mode = LockMode::Shared;
                    entry.dirty = false;
                } else {
                    st.objects.remove(&req.object);
                }
                let bytes = send_data.then(|| cached.bytes.clone());
                server.return_object(self.id, req.object, bytes.as_deref(), downgrade);
            }
        }
    }

    /// Returns every cached object to the server (shutdown flush). The
    /// cache lock is held across the returns for the same reason as in
    /// [`callback_loop`](Self::callback_loop).
    pub fn flush_all(&self, server: &SharedServer) {
        let mut st = self.state.lock();
        let mut ids: Vec<ObjectId> = st.objects.keys().copied().collect();
        ids.sort_unstable(); // deterministic shutdown order
        for id in ids {
            let cached = st.objects.remove(&id).expect("key just listed");
            let bytes = (cached.mode == LockMode::Exclusive).then_some(cached.bytes);
            server.return_object(self.id, id, bytes.as_deref(), false);
        }
    }
}

/// Outcome counters of one worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Transactions generated.
    pub generated: u64,
    /// Committed at or before the deadline.
    pub in_time: u64,
    /// Committed after the deadline.
    pub late: u64,
    /// Aborted by deadlock avoidance.
    pub deadlock_aborts: u64,
    /// Abandoned when the deadline expired while waiting for locks.
    pub timeouts: u64,
    /// Dropped before execution because the deadline had already passed.
    pub expired: u64,
    /// 1 if this worker was chaos-terminated before finishing its quota.
    pub terminated: u64,
}

/// Executes one transaction against the cache/server; returns its
/// contribution to the report.
///
/// `scale` converts simulated microseconds (from the workload generator)
/// into real time.
pub fn run_transaction(
    shared: &Arc<ClientShared>,
    server: &SharedServer,
    history: &HistoryLog,
    spec: &TransactionSpec,
    start: Instant,
    scale: f64,
    sink: &EventSink,
) -> WorkerReport {
    let mut report = WorkerReport {
        generated: 1,
        ..WorkerReport::default()
    };
    let site = SiteId::Client(shared.id);
    let (txn, spec_deadline) = (spec.id, spec.deadline);
    let accesses = spec.accesses.len() as u32;
    sink.emit(sim_now(start, scale), site, || Event::TxnSubmit {
        txn,
        deadline: spec_deadline,
        accesses,
    });
    let deadline = start + scale_duration(spec.deadline.as_micros(), scale);
    if Instant::now() > deadline {
        report.expired = 1;
        sink.emit(sim_now(start, scale), site, || Event::Abort {
            txn,
            reason: siteselect_types::AbortReason::Expired,
        });
        return report;
    }
    let mut pinned: Vec<ObjectId> = Vec::new();
    let acquire_started = sim_now(start, scale);
    for access in &spec.accesses {
        let mode = access.mode();
        if shared.try_pin(access.object, mode) {
            pinned.push(access.object);
            continue;
        }
        shared.begin_install(access.object);
        match server.acquire(shared.id, access.object, mode, deadline) {
            Ok(bytes) => {
                shared.finish_install(access.object, mode, bytes, server);
                pinned.push(access.object);
            }
            Err(e) => {
                shared.abort_install(access.object);
                shared.unpin_all(&pinned);
                let reason = match e {
                    AcquireError::Deadlock => {
                        report.deadlock_aborts = 1;
                        siteselect_types::AbortReason::Deadlock
                    }
                    AcquireError::DeadlineExpired => {
                        report.timeouts = 1;
                        siteselect_types::AbortReason::Expired
                    }
                };
                emit_lock_wait(sink, site, txn, acquire_started, sim_now(start, scale));
                sink.emit(sim_now(start, scale), site, || Event::Abort { txn, reason });
                return report;
            }
        }
    }
    // Execute: burn the scaled CPU demand.
    emit_lock_wait(sink, site, txn, acquire_started, sim_now(start, scale));
    sink.emit(sim_now(start, scale), site, || Event::ExecStart { txn });
    let cpu = scale_duration(spec.cpu_demand.as_micros(), scale);
    if !cpu.is_zero() {
        std::thread::sleep(cpu);
    }
    // Commit: apply writes and record the history.
    let mut ops = Vec::with_capacity(spec.accesses.len());
    for access in &spec.accesses {
        if access.write {
            let from = shared.bump_version(access.object);
            ops.push(Op::Write {
                txn: spec.id,
                object: access.object,
                from,
            });
        } else {
            ops.push(Op::Read {
                txn: spec.id,
                object: access.object,
                version: shared.version(access.object),
            });
        }
    }
    history.commit(ops);
    shared.unpin_all(&pinned);
    let now = sim_now(start, scale);
    let latency_us = now.as_micros().saturating_sub(spec.arrival.as_micros());
    let slack_us = spec.deadline.as_micros() as i64 - now.as_micros() as i64;
    sink.emit(now, site, || Event::Commit {
        txn,
        latency_us,
        slack_us,
    });
    if Instant::now() <= deadline {
        report.in_time = 1;
    } else {
        report.late = 1;
    }
    report
}

/// Stamps the lock-acquisition phase `[started, now)` as a lock-wait span
/// (elided when instantaneous — pins from the local cache are free).
fn emit_lock_wait(
    sink: &EventSink,
    site: SiteId,
    txn: siteselect_types::TransactionId,
    started: siteselect_types::SimTime,
    now: siteselect_types::SimTime,
) {
    if started >= now {
        return;
    }
    sink.emit(now, site, || Event::Span {
        txn: Some(txn),
        kind: siteselect_obs::SpanKind::LockWait,
        start: started,
        blocker: None,
    });
}

/// Scales simulated microseconds down to a real `Duration`.
#[must_use]
pub fn scale_duration(sim_micros: u64, scale: f64) -> Duration {
    Duration::from_secs_f64((sim_micros as f64 * scale / 1e6).max(0.0))
}

/// The inverse of [`scale_duration`]: maps real time elapsed since the
/// cluster start back onto the simulated clock, so threaded-cluster events
/// can be merged and sorted on the same axis as the simulators'.
#[must_use]
pub fn sim_now(start: Instant, scale: f64) -> SimTime {
    let real = Instant::now().saturating_duration_since(start);
    SimTime::from_micros((real.as_secs_f64() / scale * 1e6) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> Arc<SharedServer> {
        SharedServer::new(64, 16, Vec::new())
    }

    #[test]
    fn scale_duration_maths() {
        assert_eq!(scale_duration(1_000_000, 0.001), Duration::from_millis(1));
        assert_eq!(scale_duration(0, 1.0), Duration::ZERO);
    }

    #[test]
    fn pin_requires_covering_lock_and_data() {
        let srv = test_server();
        let c = ClientShared::new(ClientId(0), 4);
        assert!(!c.try_pin(ObjectId(1), LockMode::Shared));
        c.begin_install(ObjectId(1));
        c.finish_install(ObjectId(1), LockMode::Shared, vec![0u8; 2048], &srv);
        assert!(c.try_pin(ObjectId(1), LockMode::Shared));
        assert!(!c.try_pin(ObjectId(1), LockMode::Exclusive));
        c.begin_install(ObjectId(2));
        c.finish_install(ObjectId(2), LockMode::Exclusive, vec![0u8; 2048], &srv);
        assert!(c.try_pin(ObjectId(2), LockMode::Shared)); // EL covers SL
    }

    #[test]
    fn install_evicts_lru_unpinned() {
        let srv = test_server();
        let c = ClientShared::new(ClientId(0), 2);
        c.begin_install(ObjectId(1));
        c.finish_install(ObjectId(1), LockMode::Shared, vec![0; 2048], &srv);
        c.unpin_all(&[ObjectId(1)]);
        c.begin_install(ObjectId(2));
        c.finish_install(ObjectId(2), LockMode::Shared, vec![0; 2048], &srv);
        c.unpin_all(&[ObjectId(2)]);
        // Third insert evicts object 1 (LRU, unpinned).
        c.begin_install(ObjectId(3));
        c.finish_install(ObjectId(3), LockMode::Shared, vec![0; 2048], &srv);
        assert_eq!(c.cached_count(), 2);
        assert!(!c.try_pin(ObjectId(1), LockMode::Shared));
        c.unpin_all(&[ObjectId(2), ObjectId(3)]);
        assert!(c.try_pin(ObjectId(2), LockMode::Shared));
    }

    #[test]
    fn pinned_objects_survive_eviction_pressure() {
        let srv = test_server();
        let c = ClientShared::new(ClientId(0), 1);
        c.begin_install(ObjectId(1));
        c.finish_install(ObjectId(1), LockMode::Shared, vec![0; 2048], &srv); // pinned
        c.begin_install(ObjectId(2));
        c.finish_install(ObjectId(2), LockMode::Shared, vec![0; 2048], &srv);
        // Object 1 is pinned, object 2 is the fresh pinned insert: nothing
        // evictable.
        assert_eq!(c.cached_count(), 2); // temporarily over capacity
        assert!(c.try_pin(ObjectId(1), LockMode::Shared));
    }

    #[test]
    fn version_bump_round_trips() {
        let srv = test_server();
        let c = ClientShared::new(ClientId(0), 4);
        c.begin_install(ObjectId(5));
        c.finish_install(ObjectId(5), LockMode::Exclusive, vec![0; 2048], &srv);
        assert_eq!(c.version(ObjectId(5)), 0);
        assert_eq!(c.bump_version(ObjectId(5)), 0);
        assert_eq!(c.version(ObjectId(5)), 1);
        assert_eq!(c.bump_version(ObjectId(5)), 1);
    }
}
