//! The shared database server: global lock table, callback issuing, paged
//! store with real bytes, and blocking lock acquisition with deadline
//! timeouts.

use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

use siteselect_locks::{LockTable, QueueDiscipline, WaitForGraph};
use siteselect_storage::PagedFile;
use siteselect_types::{ClientId, LockMode, ObjectId, SimTime};

use crate::sync::{Condvar, Mutex};

/// A lock recall delivered to a client's callback thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackReq {
    /// Object whose lock the server wants back.
    pub object: ObjectId,
    /// Mode the blocked requester needs (allows EL→SL downgrade).
    pub desired: LockMode,
}

/// Why a blocking acquisition failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// Granting the request could have closed a wait-for cycle.
    Deadlock,
    /// The requester's deadline passed while waiting.
    DeadlineExpired,
}

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcquireError::Deadlock => write!(f, "lock request would deadlock"),
            AcquireError::DeadlineExpired => write!(f, "deadline expired while waiting for lock"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// Cumulative server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Lock acquisitions granted.
    pub grants: u64,
    /// Callback messages sent.
    pub recalls: u64,
    /// Objects returned with data.
    pub returns: u64,
    /// EL→SL downgrades.
    pub downgrades: u64,
    /// Requests refused by deadlock avoidance.
    pub deadlock_rejections: u64,
    /// Requests abandoned on deadline timeout.
    pub timeouts: u64,
}

struct Inner {
    locks: LockTable<ClientId>,
    wfg: WaitForGraph<ClientId>,
    store: PagedFile,
    /// Callbacks already in flight, to avoid duplicates.
    recalled: std::collections::HashSet<(ObjectId, ClientId)>,
    stats: ServerStats,
}

/// The thread-safe database server shared by all client threads.
pub struct SharedServer {
    inner: Mutex<Inner>,
    cv: Condvar,
    callback_tx: Mutex<Vec<Option<Sender<CallbackReq>>>>,
}

impl SharedServer {
    /// Creates a server over a zero-initialized database of `db_objects`
    /// pages, buffered by `buffer_frames` frames. `callback_tx[i]` reaches
    /// client `i`'s callback thread.
    #[must_use]
    pub fn new(db_objects: u32, buffer_frames: usize, callback_tx: Vec<Sender<CallbackReq>>) -> Arc<Self> {
        let mut store = PagedFile::create(db_objects, buffer_frames);
        // Zero the version word of every page so history checking starts
        // from version 0.
        for i in 0..db_objects {
            store
                .with_page_mut(ObjectId(i), |p| p.write_u64_at(0, 0))
                .expect("page exists");
        }
        Arc::new(SharedServer {
            inner: Mutex::new(Inner {
                locks: LockTable::new(QueueDiscipline::Deadline),
                wfg: WaitForGraph::new(),
                store,
                recalled: std::collections::HashSet::new(),
                stats: ServerStats::default(),
            }),
            cv: Condvar::new(),
            callback_tx: Mutex::new(callback_tx.into_iter().map(Some).collect()),
        })
    }

    /// Blocking lock acquisition: waits (issuing callbacks to conflicting
    /// cached locks) until granted or `deadline` passes.
    ///
    /// On success returns the current page bytes so the client can install
    /// the object in its cache.
    ///
    /// # Errors
    ///
    /// [`AcquireError::Deadlock`] if the wait would close a cycle;
    /// [`AcquireError::DeadlineExpired`] on timeout.
    pub fn acquire(
        &self,
        client: ClientId,
        object: ObjectId,
        mode: LockMode,
        deadline: Instant,
    ) -> Result<Vec<u8>, AcquireError> {
        let mut inner = self.inner.lock();
        // Fast path: already covered.
        if inner
            .locks
            .held_mode(object, client)
            .is_some_and(|m| m.covers(mode))
        {
            inner.stats.grants += 1;
            return Ok(Self::read_page(&mut inner, object));
        }
        let conflicts = inner.locks.conflicting_holders(object, client, mode);
        if inner.wfg.would_deadlock(client, &conflicts) {
            inner.stats.deadlock_rejections += 1;
            return Err(AcquireError::Deadlock);
        }
        inner.wfg.add_waits(client, conflicts);
        let outcome = inner.locks.request(object, client, mode, SimTime::MAX);
        if outcome.is_granted() {
            inner.wfg.clear_waits(client);
            inner.stats.grants += 1;
            return Ok(Self::read_page(&mut inner, object));
        }
        loop {
            // detlint: allow(D8) — issue_callbacks only does std::sync::mpsc
            // sends on unbounded channels, which enqueue without blocking
            self.issue_callbacks(&mut inner, client, object, mode);
            let timed_out = self.cv.wait_until(&mut inner, deadline).timed_out();
            if inner
                .locks
                .held_mode(object, client)
                .is_some_and(|m| m.covers(mode))
            {
                inner.wfg.clear_waits(client);
                inner.stats.grants += 1;
                return Ok(Self::read_page(&mut inner, object));
            }
            if timed_out {
                let (_, granted) = inner.locks.cancel_wait(object, client);
                // A cancellation can unblock compatible followers.
                if !granted.is_empty() {
                    self.cv.notify_all();
                }
                inner.wfg.clear_waits(client);
                inner.stats.timeouts += 1;
                return Err(AcquireError::DeadlineExpired);
            }
        }
    }

    fn read_page(inner: &mut Inner, object: ObjectId) -> Vec<u8> {
        inner
            .store
            .with_page(object, |p| p.bytes().to_vec())
            .expect("object exists")
    }

    fn issue_callbacks(&self, inner: &mut Inner, client: ClientId, object: ObjectId, mode: LockMode) {
        let conflicts = inner.locks.conflicting_holders(object, client, mode);
        for holder in conflicts {
            if inner.recalled.insert((object, holder)) {
                inner.stats.recalls += 1;
                // Ignore send failures: the client may already have shut
                // down, in which case its locks were voluntarily returned.
                if let Some(tx) = self.callback_tx.lock()[holder.index()].as_ref() {
                    // detlint: allow(D8) — unbounded mpsc send enqueues
                    // without blocking; the guard cannot be held across a wait
                    let _ = tx.send(CallbackReq {
                        object,
                        desired: mode,
                    });
                }
            }
        }
    }

    /// Closes every callback channel so the client callback threads drain
    /// their queues and exit (shutdown path).
    pub fn close(&self) {
        for slot in self.callback_tx.lock().iter_mut() {
            *slot = None;
        }
    }

    /// A client answers a callback or voluntarily returns an object.
    ///
    /// `bytes` carries the page contents when the client held (and possibly
    /// updated) the data; `downgrade` keeps a shared lock at the client.
    pub fn return_object(
        &self,
        client: ClientId,
        object: ObjectId,
        bytes: Option<&[u8]>,
        downgrade: bool,
    ) {
        let mut inner = self.inner.lock();
        if let Some(data) = bytes {
            inner
                .store
                .with_page_mut(object, |p| p.bytes_mut().copy_from_slice(data))
                .expect("object exists");
            inner.stats.returns += 1;
        }
        if downgrade {
            inner.locks.downgrade(object, client);
            inner.stats.downgrades += 1;
        } else {
            inner.locks.release(object, client);
        }
        inner.recalled.remove(&(object, client));
        self.cv.notify_all();
    }

    /// Reads the committed version counter of `object` (first page word).
    #[must_use]
    pub fn stored_version(&self, object: ObjectId) -> u64 {
        let mut inner = self.inner.lock();
        inner
            .store
            .with_page(object, |p| p.read_u64_at(0))
            .expect("object exists")
    }

    /// Snapshot of the server counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel as unbounded;
    use std::time::Duration;

    fn server(clients: u16) -> (Arc<SharedServer>, Vec<std::sync::mpsc::Receiver<CallbackReq>>) {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..clients {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        (SharedServer::new(16, 8, txs), rxs)
    }

    fn soon() -> Instant {
        Instant::now() + Duration::from_millis(200)
    }

    #[test]
    fn grant_and_reacquire() {
        let (s, _rx) = server(2);
        let bytes = s.acquire(ClientId(0), ObjectId(1), LockMode::Shared, soon()).unwrap();
        assert_eq!(bytes.len(), siteselect_storage::PAGE_SIZE);
        // Covered re-acquisition succeeds immediately.
        s.acquire(ClientId(0), ObjectId(1), LockMode::Shared, soon()).unwrap();
        assert_eq!(s.stats().grants, 2);
    }

    #[test]
    fn conflicting_acquire_times_out_and_sends_callback() {
        let (s, rx) = server(2);
        s.acquire(ClientId(0), ObjectId(1), LockMode::Exclusive, soon()).unwrap();
        let t0 = Instant::now();
        let err = s
            .acquire(
                ClientId(1),
                ObjectId(1),
                LockMode::Shared,
                Instant::now() + Duration::from_millis(50),
            )
            .unwrap_err();
        assert_eq!(err, AcquireError::DeadlineExpired);
        assert!(t0.elapsed() >= Duration::from_millis(45));
        // Client 0 received a recall asking for a shared downgrade.
        let cb = rx[0].try_recv().unwrap();
        assert_eq!(cb.object, ObjectId(1));
        assert_eq!(cb.desired, LockMode::Shared);
    }

    #[test]
    fn return_unblocks_waiter() {
        let (s, _rx) = server(2);
        s.acquire(ClientId(0), ObjectId(2), LockMode::Exclusive, soon()).unwrap();
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || {
            s2.acquire(
                ClientId(1),
                ObjectId(2),
                LockMode::Exclusive,
                Instant::now() + Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(30));
        // Client 0 returns a modified page.
        let mut data = vec![0u8; siteselect_storage::PAGE_SIZE];
        data[0..8].copy_from_slice(&7u64.to_le_bytes());
        s.return_object(ClientId(0), ObjectId(2), Some(&data), false);
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(got[0..8].try_into().unwrap()), 7);
        assert_eq!(s.stored_version(ObjectId(2)), 7);
    }

    #[test]
    fn downgrade_keeps_shared_lock() {
        let (s, _rx) = server(2);
        s.acquire(ClientId(0), ObjectId(3), LockMode::Exclusive, soon()).unwrap();
        let data = vec![0u8; siteselect_storage::PAGE_SIZE];
        s.return_object(ClientId(0), ObjectId(3), Some(&data), true);
        // Another shared reader coexists now.
        s.acquire(ClientId(1), ObjectId(3), LockMode::Shared, soon()).unwrap();
        // But an exclusive request by client 1 conflicts with client 0's SL.
        let err = s
            .acquire(
                ClientId(1),
                ObjectId(3),
                LockMode::Exclusive,
                Instant::now() + Duration::from_millis(30),
            )
            .unwrap_err();
        assert_eq!(err, AcquireError::DeadlineExpired);
        assert_eq!(s.stats().downgrades, 1);
    }

    #[test]
    fn deadlock_rejected_quickly() {
        let (s, _rx) = server(2);
        s.acquire(ClientId(0), ObjectId(1), LockMode::Exclusive, soon()).unwrap();
        s.acquire(ClientId(1), ObjectId(2), LockMode::Exclusive, soon()).unwrap();
        // Client 0 waits for object 2 in a background thread.
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.acquire(
                ClientId(0),
                ObjectId(2),
                LockMode::Exclusive,
                Instant::now() + Duration::from_millis(300),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        // Client 1 asking for object 1 would close the cycle.
        let err = s
            .acquire(ClientId(1), ObjectId(1), LockMode::Exclusive, soon())
            .unwrap_err();
        assert_eq!(err, AcquireError::Deadlock);
        // Resolve: client 1 returns object 2 so the waiter completes.
        s.return_object(ClientId(1), ObjectId(2), None, false);
        h.join().unwrap().unwrap();
    }
}
