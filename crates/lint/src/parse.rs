//! Recursive-descent item/signature parser on top of [`crate::lexer`].
//!
//! This is deliberately *not* a full Rust parser: it recovers exactly
//! the structure the v2 passes need — which functions exist (with their
//! body token spans), which `impl`/`trait` type each method belongs to,
//! the inline module path, `use` aliases good enough to resolve
//! intra-workspace calls, and which items are `#[cfg(test)]`-only. The
//! grammar subset covers everything in this repository; anything the
//! parser cannot classify is recorded as a [`ParseError`] (a
//! workspace-wide smoke test asserts the count stays zero) and skipped
//! with panic-free recovery, so a new syntax form degrades analysis
//! coverage instead of crashing the linter.
//!
//! All spans are indices into the **code token** vector (comments
//! stripped, see [`code_tokens`]) — the same view the rule passes walk,
//! so a body range can be sliced directly.

use crate::lexer::{TokKind, Token};

/// Filters a lexed stream down to code tokens (the view every pass
/// indexes into).
#[must_use]
pub fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| t.is_code()).collect()
}

/// One function (free `fn`, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The `impl`/`trait` type this is a method of, if any.
    pub self_ty: Option<String>,
    /// Inline `mod` path within the file (file-level module path is
    /// derived from the file path by the workspace layer).
    pub module: Vec<String>,
    pub line: u32,
    /// Body span in code-token indices: `(first_token_inside,
    /// one_past_closing_brace - 1)`, i.e. `code[start..end]` is the body
    /// without its braces. `None` for bodyless trait/extern decls.
    pub body: Option<(usize, usize)>,
    /// Declared under `#[cfg(test)]` / `#[test]` — exempt from the
    /// panic audit and the lock pass.
    pub test_only: bool,
    /// Has a `self` receiver (method-call resolution candidates).
    pub has_self: bool,
}

/// One resolved `use` alias: `alias` names `path` in this file.
#[derive(Debug, Clone)]
pub struct UseAlias {
    pub alias: String,
    pub path: Vec<String>,
}

/// A construct the parser could not classify.
#[derive(Debug, Clone)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub uses: Vec<UseAlias>,
    /// `mod name;` declarations (module tree edges to sibling files).
    pub mod_decls: Vec<String>,
    /// Code-token spans of `#[cfg(test)]` subtrees (mod bodies and fn
    /// bodies), for passes that skip test-only code wholesale.
    pub test_spans: Vec<(usize, usize)>,
    pub errors: Vec<ParseError>,
}

impl ParsedFile {
    /// The function whose body span contains code-token index `i`.
    /// Inner items nested in another body resolve to the innermost fn.
    #[must_use]
    pub fn fn_containing(&self, i: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s <= i && i < e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }

    /// True when code-token index `i` lies in test-only code.
    #[must_use]
    pub fn in_test_span(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= i && i < e)
    }
}

/// Parses the code-token view of one file.
#[must_use]
pub fn parse_file(code: &[&Token]) -> ParsedFile {
    let mut p = Parser {
        code,
        i: 0,
        out: ParsedFile::default(),
    };
    let end = code.len();
    let mut module = Vec::new();
    p.items(&mut module, None, false, end);
    p.out
}

/// Attributes observed in front of an item.
#[derive(Debug, Default, Clone, Copy)]
struct Attrs {
    cfg_test: bool,
    is_test: bool,
}

struct Parser<'a> {
    code: &'a [&'a Token],
    i: usize,
    out: ParsedFile,
}

/// Keywords that introduce items the parser understands.
const MODIFIERS: [&str; 4] = ["pub", "unsafe", "async", "default"];

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.code.get(self.i + ahead).copied()
    }

    fn ident_at(&self, ahead: usize) -> Option<&'a str> {
        self.peek(ahead).and_then(Token::ident)
    }

    fn punct_at(&self, ahead: usize, c: char) -> bool {
        self.peek(ahead).is_some_and(|t| t.is_punct(c))
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn error(&mut self, message: String) {
        let line = self.line();
        self.out.errors.push(ParseError { line, message });
    }

    /// Parses items until `end` (exclusive) or a stray `}`.
    fn items(&mut self, module: &mut Vec<String>, self_ty: Option<&str>, test_only: bool, end: usize) {
        while self.i < end {
            if self.punct_at(0, '}') {
                return; // caller consumes it
            }
            self.item(module, self_ty, test_only, end);
        }
    }

    /// Parses one item, with recovery on anything unrecognized.
    #[allow(clippy::too_many_lines)] // one arm per item kind; splitting obscures the grammar
    fn item(&mut self, module: &mut Vec<String>, self_ty: Option<&str>, test_only: bool, end: usize) {
        let attrs = self.attrs();
        // Visibility / item modifiers. `const` is special: `const fn` is
        // a modifier use, `const NAME` an item.
        let mut saw_fn_modifiers = false;
        loop {
            match self.ident_at(0) {
                Some(m) if MODIFIERS.contains(&m) => {
                    self.i += 1;
                    if m == "pub" && self.punct_at(0, '(') {
                        self.skip_balanced('(', ')');
                    }
                    saw_fn_modifiers = true;
                }
                Some("const") if matches!(self.ident_at(1), Some("fn" | "unsafe" | "extern")) => {
                    self.i += 1;
                    saw_fn_modifiers = true;
                }
                Some("extern") if self.peek(1).is_some_and(|t| t.kind == TokKind::Str)
                    && self.ident_at(2) == Some("fn") =>
                {
                    self.i += 2; // `extern "C"` fn-qualifier
                    saw_fn_modifiers = true;
                }
                _ => break,
            }
        }
        let Some(kw) = self.ident_at(0) else {
            // Stray punctuation at item position (e.g. a leftover `;`).
            if self.punct_at(0, ';') {
                self.i += 1;
                return;
            }
            self.error(format!(
                "expected an item, found `{:?}`",
                self.peek(0).map(|t| &t.kind)
            ));
            self.recover(end);
            return;
        };
        match kw {
            "use" => self.use_item(end),
            "mod" => self.mod_item(module, test_only || attrs.cfg_test, end),
            "fn" => self.fn_item(module, self_ty, test_only, attrs, end),
            "impl" => self.impl_item(module, test_only || attrs.cfg_test, end),
            "trait" => self.trait_item(module, test_only || attrs.cfg_test, end),
            "struct" | "enum" | "union" => {
                self.i += 1;
                // Name, generics, optional where clause, then `{…}` /
                // `(…);` / `;`.
                self.skip_to_item_body_or_semi(end);
            }
            "const" | "static" | "type" => {
                self.i += 1;
                self.skip_to_semi(end);
            }
            "extern" => {
                // `extern crate x;` or an `extern "C" { … }` block.
                self.i += 1;
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                    self.i += 1;
                }
                if self.punct_at(0, '{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.skip_to_semi(end);
                }
            }
            "macro_rules" => {
                self.i += 1; // macro_rules
                if self.punct_at(0, '!') {
                    self.i += 1;
                }
                self.i += 1; // the macro's name
                self.skip_macro_body(end);
            }
            name => {
                // Item-position macro invocation: `name!(…);` /
                // `name! { … }` (e.g. `thread_local!`), possibly
                // path-qualified.
                let start = self.i;
                while self.ident_at(0).is_some() && self.punct_at(1, ':') && self.punct_at(2, ':') {
                    self.i += 3;
                }
                if self.ident_at(0).is_some() && self.punct_at(1, '!') {
                    self.i += 2;
                    self.skip_macro_body(end);
                    if self.punct_at(0, ';') {
                        self.i += 1;
                    }
                    return;
                }
                self.i = start;
                let _ = saw_fn_modifiers;
                self.error(format!("unrecognized item starting at `{name}`"));
                self.recover(end);
            }
        }
    }

    /// Collects `#[…]` / `#![…]` attributes in front of an item.
    fn attrs(&mut self) -> Attrs {
        let mut attrs = Attrs::default();
        loop {
            if !self.punct_at(0, '#') {
                return attrs;
            }
            let mut j = 1;
            if self.punct_at(j, '!') {
                j += 1;
            }
            if !self.punct_at(j, '[') {
                return attrs;
            }
            self.i += j; // at `[`
            let open = self.i;
            self.skip_balanced('[', ']');
            // Scan the attribute's tokens for cfg(test) / #[test].
            let inner: Vec<&str> = self.code[open..self.i]
                .iter()
                .filter_map(|t| t.ident())
                .collect();
            if inner.first() == Some(&"cfg") && inner.contains(&"test") {
                attrs.cfg_test = true;
            }
            if inner == ["test"] {
                attrs.is_test = true;
            }
        }
    }

    /// `use tree;` — records every alias the tree introduces.
    fn use_item(&mut self, end: usize) {
        self.i += 1; // use
        let start = self.i;
        let mut depth = 0i32;
        while self.i < end {
            if self.punct_at(0, '{') {
                depth += 1;
            } else if self.punct_at(0, '}') {
                depth -= 1;
            } else if self.punct_at(0, ';') && depth == 0 {
                break;
            }
            self.i += 1;
        }
        let tree = &self.code[start..self.i];
        self.i += 1; // ;
        let mut aliases = Vec::new();
        Self::use_tree(tree, &[], &mut aliases);
        self.out.uses.extend(aliases);
    }

    /// Recursively expands a use tree into (alias, path) pairs.
    fn use_tree(toks: &[&Token], prefix: &[String], out: &mut Vec<UseAlias>) {
        let mut i = 0;
        let mut path: Vec<String> = prefix.to_vec();
        while i < toks.len() {
            match &toks[i].kind {
                TokKind::Ident(s) if s == "as" => {
                    // `path as alias`
                    if let Some(alias) = toks.get(i + 1).and_then(|t| t.ident()) {
                        out.push(UseAlias {
                            alias: alias.to_string(),
                            path: path.clone(),
                        });
                    }
                    return;
                }
                TokKind::Ident(s) if s == "self" && !path.is_empty() => {
                    // `{self, …}` — the prefix itself.
                    out.push(UseAlias {
                        alias: path.last().cloned().unwrap_or_default(),
                        path: path.clone(),
                    });
                    return;
                }
                TokKind::Ident(s) => {
                    path.push(s.clone());
                    i += 1;
                }
                TokKind::Punct(':') => {
                    i += 1; // path separator halves
                }
                TokKind::Punct('{') => {
                    // Group: split top-level commas, recurse per element.
                    let inner = Self::balanced_slice(toks, i, '{', '}');
                    let mut start = 0;
                    let mut depth = 0i32;
                    for (k, t) in inner.iter().enumerate() {
                        match &t.kind {
                            TokKind::Punct('{') => depth += 1,
                            TokKind::Punct('}') => depth -= 1,
                            TokKind::Punct(',') if depth == 0 => {
                                Self::use_tree(&inner[start..k], &path, out);
                                start = k + 1;
                            }
                            _ => {}
                        }
                    }
                    if start < inner.len() {
                        Self::use_tree(&inner[start..], &path, out);
                    }
                    return;
                }
                _ => return, // `*` glob or anything unexpected: not tracked
            }
        }
        if path.len() > prefix.len() || !path.is_empty() && prefix.is_empty() {
            if let Some(alias) = path.last().cloned() {
                out.push(UseAlias { alias, path });
            }
        }
    }

    /// The tokens inside the balanced group opening at `toks[open_idx]`.
    fn balanced_slice<'t>(toks: &'t [&'t Token], open_idx: usize, open: char, close: char) -> &'t [&'t Token] {
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().skip(open_idx) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return &toks[open_idx + 1..k];
                }
            }
        }
        &toks[open_idx + 1..]
    }

    /// `mod name;` or `mod name { items }`.
    fn mod_item(&mut self, module: &mut Vec<String>, test_only: bool, end: usize) {
        self.i += 1; // mod
        let Some(name) = self.ident_at(0).map(String::from) else {
            self.error("`mod` without a name".into());
            self.recover(end);
            return;
        };
        self.i += 1;
        if self.punct_at(0, ';') {
            self.i += 1;
            self.out.mod_decls.push(name);
            return;
        }
        if !self.punct_at(0, '{') {
            self.error(format!("`mod {name}` without `;` or body"));
            self.recover(end);
            return;
        }
        self.i += 1; // {
        let body_start = self.i;
        module.push(name);
        // Find the matching close so nested items can't run past it.
        let close = self.matching_brace(body_start - 1, end);
        self.items(module, None, test_only, close);
        module.pop();
        self.i = close;
        if self.punct_at(0, '}') {
            self.i += 1;
        }
        if test_only {
            self.out.test_spans.push((body_start, close));
        }
    }

    /// `impl … { items }` — methods get the implemented type as
    /// `self_ty`.
    fn impl_item(&mut self, module: &mut Vec<String>, test_only: bool, end: usize) {
        self.i += 1; // impl
        if self.punct_at(0, '<') {
            self.skip_generics();
        }
        // Scan the header up to `{`: the self type is the last path
        // segment at angle-depth 0 before the body, taken after `for`
        // when present (`impl Trait for Type`), frozen at `where`.
        let mut ty: Option<String> = None;
        let mut in_where = false;
        while self.i < end {
            if self.punct_at(0, '{') {
                break;
            }
            if self.punct_at(0, '<') {
                self.skip_generics();
                continue;
            }
            if self.punct_at(0, '(') {
                self.skip_balanced('(', ')'); // fn-pointer / tuple types
                continue;
            }
            match self.ident_at(0) {
                Some("for") => {
                    ty = None;
                    in_where = false;
                }
                Some("where") => in_where = true,
                Some(seg) if !in_where => ty = Some(seg.to_string()),
                _ => {}
            }
            self.i += 1;
        }
        if !self.punct_at(0, '{') {
            self.error("`impl` without a body".into());
            return;
        }
        let open = self.i;
        self.i += 1;
        let close = self.matching_brace(open, end);
        let ty = ty.unwrap_or_else(|| "?impl".into());
        self.items(module, Some(&ty), test_only, close);
        self.i = close;
        if self.punct_at(0, '}') {
            self.i += 1;
        }
        if test_only {
            self.out.test_spans.push((open + 1, close));
        }
    }

    /// `trait Name … { items }` — default methods get the trait as
    /// `self_ty`.
    fn trait_item(&mut self, module: &mut Vec<String>, test_only: bool, end: usize) {
        self.i += 1; // trait
        let name = self.ident_at(0).map_or_else(|| "?trait".into(), String::from);
        self.i += 1;
        while self.i < end && !self.punct_at(0, '{') {
            if self.punct_at(0, ';') {
                self.i += 1; // `trait Alias = …;`
                return;
            }
            if self.punct_at(0, '<') {
                self.skip_generics();
            } else if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
            } else {
                self.i += 1;
            }
        }
        if !self.punct_at(0, '{') {
            return;
        }
        let open = self.i;
        self.i += 1;
        let close = self.matching_brace(open, end);
        self.items(module, Some(&name), test_only, close);
        self.i = close;
        if self.punct_at(0, '}') {
            self.i += 1;
        }
        if test_only {
            self.out.test_spans.push((open + 1, close));
        }
    }

    /// `fn name<…>(params) -> Ret where … { body }` (or `;`).
    fn fn_item(
        &mut self,
        module: &[String],
        self_ty: Option<&str>,
        test_only: bool,
        attrs: Attrs,
        end: usize,
    ) {
        let line = self.line();
        self.i += 1; // fn
        let Some(name) = self.ident_at(0).map(String::from) else {
            self.error("`fn` without a name".into());
            self.recover(end);
            return;
        };
        self.i += 1;
        if self.punct_at(0, '<') {
            self.skip_generics();
        }
        if !self.punct_at(0, '(') {
            self.error(format!("fn `{name}` without a parameter list"));
            self.recover(end);
            return;
        }
        let params_open = self.i;
        self.skip_balanced('(', ')');
        // `self` receiver: an ident `self` at paren depth 1 before the
        // first comma.
        let params = Self::balanced_slice(self.code, params_open, '(', ')');
        let mut has_self = false;
        for t in params {
            if t.is_punct(',') {
                break;
            }
            if t.ident() == Some("self") {
                has_self = true;
                break;
            }
        }
        // Return type / where clause: up to `{` or `;` at group depth 0.
        while self.i < end && !self.punct_at(0, '{') && !self.punct_at(0, ';') {
            if self.punct_at(0, '<') {
                self.skip_generics();
            } else if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
            } else if self.punct_at(0, '[') {
                self.skip_balanced('[', ']');
            } else {
                self.i += 1;
            }
        }
        let body = if self.punct_at(0, '{') {
            let open = self.i;
            self.i += 1;
            let close = self.matching_brace(open, end);
            self.i = close;
            if self.punct_at(0, '}') {
                self.i += 1;
            }
            Some((open + 1, close))
        } else {
            if self.punct_at(0, ';') {
                self.i += 1;
            }
            None
        };
        let fn_test_only = test_only || attrs.cfg_test || attrs.is_test;
        if fn_test_only {
            if let Some(span) = body {
                self.out.test_spans.push(span);
            }
        }
        self.out.fns.push(FnDef {
            name,
            self_ty: self_ty.map(String::from),
            module: module.to_vec(),
            line,
            body,
            test_only: fn_test_only,
            has_self,
        });
        // Items nested in the body (`fn inner()` helpers) get their own
        // nodes so callers attribute their calls correctly.
        if let Some((s, e)) = body {
            self.scan_nested_fns(s, e, module, fn_test_only);
        }
    }

    /// Finds `fn name…` definitions inside a body span and parses each
    /// as its own item (free functions: no self type). Each nested fn
    /// recursively scans its own body, and the outer scan resumes past
    /// it, so no definition is parsed twice. `fn(u32) -> u32` pointer
    /// types don't match (no name after `fn`).
    fn scan_nested_fns(&mut self, start: usize, end: usize, module: &[String], test_only: bool) {
        let saved = self.i;
        let mut k = start;
        while k < end {
            let is_def = self.code[k].ident() == Some("fn")
                && self.code.get(k + 1).is_some_and(|t| t.ident().is_some());
            if is_def {
                self.i = k;
                let attrs = Attrs {
                    cfg_test: test_only,
                    is_test: false,
                };
                self.fn_item(module, None, test_only, attrs, end);
                k = self.i; // past the nested body — never re-scanned
            } else {
                k += 1;
            }
        }
        self.i = saved;
    }

    /// Index of the `}` matching the `{` at `open` (bounded by `end`).
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < end {
            if self.code[k].is_punct('{') {
                depth += 1;
            } else if self.code[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            k += 1;
        }
        end
    }

    /// Skips a balanced `open…close` group starting at the cursor.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while self.i < self.code.len() {
            if self.punct_at(0, open) {
                depth += 1;
            } else if self.punct_at(0, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips a `<…>` generic group, treating `->` arrows (legal inside
    /// `Fn(…) -> T` bounds) as non-closing.
    fn skip_generics(&mut self) {
        let mut depth = 0i32;
        while self.i < self.code.len() {
            if self.punct_at(0, '-') && self.punct_at(1, '>') {
                self.i += 2;
                continue;
            }
            if self.punct_at(0, '<') {
                depth += 1;
            } else if self.punct_at(0, '>') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips a macro body: the next balanced `(…)`, `[…]` or `{…}`.
    fn skip_macro_body(&mut self, end: usize) {
        while self.i < end {
            if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
                return;
            }
            if self.punct_at(0, '[') {
                self.skip_balanced('[', ']');
                return;
            }
            if self.punct_at(0, '{') {
                self.skip_balanced('{', '}');
                return;
            }
            self.i += 1;
        }
    }

    /// Skips to the item-terminating `;`, balancing every group so
    /// initializer expressions (struct literals, arrays, blocks) don't
    /// end the item early.
    fn skip_to_semi(&mut self, end: usize) {
        while self.i < end {
            if self.punct_at(0, ';') {
                self.i += 1;
                return;
            }
            if self.punct_at(0, '{') {
                self.skip_balanced('{', '}');
                continue;
            }
            if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
                continue;
            }
            if self.punct_at(0, '[') {
                self.skip_balanced('[', ']');
                continue;
            }
            self.i += 1;
        }
    }

    /// For struct/enum/union: skip name + generics, then either the
    /// `{…}` body, the `(…);` tuple form, or a bare `;`.
    fn skip_to_item_body_or_semi(&mut self, end: usize) {
        while self.i < end {
            if self.punct_at(0, '{') {
                self.skip_balanced('{', '}');
                return;
            }
            if self.punct_at(0, '(') {
                self.skip_balanced('(', ')');
                // Tuple struct: `(…)` then optional where clause + `;`.
                self.skip_to_semi(end);
                return;
            }
            if self.punct_at(0, ';') {
                self.i += 1;
                return;
            }
            if self.punct_at(0, '<') {
                self.skip_generics();
                continue;
            }
            self.i += 1;
        }
    }

    /// Error recovery: skip to the next plausible item boundary (a `;`
    /// or balanced `}` at this level).
    fn recover(&mut self, end: usize) {
        while self.i < end {
            if self.punct_at(0, ';') {
                self.i += 1;
                return;
            }
            if self.punct_at(0, '{') {
                self.skip_balanced('{', '}');
                return;
            }
            if self.punct_at(0, '}') {
                return;
            }
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let toks = lex(src);
        let code = code_tokens(&toks);
        parse_file(&code)
    }

    #[test]
    fn free_fns_impls_and_traits() {
        let p = parse(
            r"
pub fn alpha(x: u32) -> u32 { x + 1 }
struct S { v: Vec<u32> }
impl S {
    pub(crate) fn method(&self) -> usize { self.v.len() }
    fn assoc() -> S { S { v: Vec::new() } }
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
trait T {
    fn required(&self);
    fn defaulted(&self) -> u32 { 7 }
}
",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let names: Vec<(String, Option<String>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha".into(), None, false),
                ("method".into(), Some("S".into()), true),
                ("assoc".into(), Some("S".into()), false),
                ("fmt".into(), Some("S".into()), true),
                ("required".into(), Some("T".into()), true),
                ("defaulted".into(), Some("T".into()), true),
            ]
        );
        // `required` has no body; `defaulted` does.
        assert!(p.fns[4].body.is_none());
        assert!(p.fns[5].body.is_some());
    }

    #[test]
    fn generics_where_clauses_and_const_fns() {
        let p = parse(
            r#"
pub const fn silent<T: Into<u64>>(x: T) -> u64 where T: Copy { x.into() }
fn closure_bound<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }
unsafe fn danger() {}
pub async fn later() {}
extern "C" fn c_abi() {}
"#,
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["silent", "closure_bound", "danger", "later", "c_abi"]);
    }

    #[test]
    fn modules_nest_and_cfg_test_marks_spans() {
        let p = parse(
            r"
mod outer {
    pub fn in_outer() {}
    mod inner {
        pub fn deep() {}
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn a_test() { helper(); }
    fn helper() {}
}
fn top() {}
",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("in_outer").module, vec!["outer"]);
        assert_eq!(by_name("deep").module, vec!["outer", "inner"]);
        assert!(by_name("a_test").test_only);
        assert!(by_name("helper").test_only, "cfg(test) mod marks all fns");
        assert!(!by_name("top").test_only);
        assert!(!p.test_spans.is_empty());
        let helper_body = by_name("helper").body.unwrap();
        assert!(p.in_test_span(helper_body.0));
        let top_body = by_name("top").body.unwrap();
        assert!(!p.in_test_span(top_body.0));
    }

    #[test]
    fn use_aliases_expand_groups_and_renames() {
        let p = parse(
            r"
use std::collections::HashMap;
use crate::queue::{EventQueue, wheel::TimerWheel};
use siteselect_sim::Prng as Rng;
use super::fabric::{self, Fabric};
use std::io::*;
",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let find = |a: &str| {
            p.uses
                .iter()
                .find(|u| u.alias == a)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(find("HashMap").as_deref(), Some("std::collections::HashMap"));
        assert_eq!(find("EventQueue").as_deref(), Some("crate::queue::EventQueue"));
        assert_eq!(
            find("TimerWheel").as_deref(),
            Some("crate::queue::wheel::TimerWheel")
        );
        assert_eq!(find("Rng").as_deref(), Some("siteselect_sim::Prng"));
        assert_eq!(find("fabric").as_deref(), Some("super::fabric"));
        assert_eq!(find("Fabric").as_deref(), Some("super::fabric::Fabric"));
    }

    #[test]
    fn item_macros_consts_and_extern_blocks_are_skipped() {
        let p = parse(
            r#"
thread_local! { static TL: u32 = 0; }
const TABLE: [u8; 4] = [1, 2, 3, 4];
static NAMES: &[&str] = &["a", "b"];
type Pair = (u32, u32);
macro_rules! mk { () => {} }
extern "C" { fn puts(s: *const u8) -> i32; }
fn after() {}
"#,
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
    }

    #[test]
    fn bodies_span_the_right_tokens() {
        let src = "fn f() { inner_call(); } fn g() {}";
        let toks = lex(src);
        let code = code_tokens(&toks);
        let p = parse_file(&code);
        let (s, e) = p.fns[0].body.unwrap();
        let body_idents: Vec<&str> = code[s..e].iter().filter_map(|t| t.ident()).collect();
        assert_eq!(body_idents, vec!["inner_call"]);
        assert_eq!(p.fn_containing(s).unwrap().name, "f");
        let (gs, ge) = p.fns[1].body.unwrap();
        assert_eq!(gs, ge, "empty body is an empty span");
    }

    #[test]
    fn unrecognized_items_error_but_do_not_derail() {
        let p = parse("fn ok() {} ??? garbage ; fn also_ok() {}");
        assert!(!p.errors.is_empty());
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"ok") && names.contains(&"also_ok"), "{names:?}");
    }
}
