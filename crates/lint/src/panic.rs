//! D9 — the panic-surface audit.
//!
//! The engine crates (`core`, `sim`, `locks`, `storage`) sit under a
//! replay harness and a crash-recovery oracle; a stray panic there
//! doesn't just kill a process, it invalidates a measurement run or —
//! worse — masquerades as a crash the recovery machinery is *supposed*
//! to handle. This pass enumerates every potential panic site in
//! non-test code:
//!
//! * `.unwrap()` / `.expect(…)` (including `unwrap_err`/`expect_err`),
//! * postfix indexing `x[…]` (slice/array/map indexing and range
//!   slicing all panic on miss).
//!
//! A site is fine when it carries an inline `allow(D9)` annotation
//! stating why it cannot fire, or when it is absorbed by the committed
//! baseline (`detlint.baseline.json`) — the ratchet that lets the
//! existing surface shrink but never grow. See [`crate::baseline`].

use crate::callgraph::Unit;
use crate::lexer::Token;
use crate::rules::{allowed_by_line, RuleId, Violation};

/// Keywords that may directly precede `[` when it opens an array
/// *literal* or pattern rather than an index expression.
const NON_INDEX_KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "mut", "let",
    "ref", "unsafe", "async", "await", "dyn", "where", "break", "continue", "box", "yield",
];

/// Scans one unit for D9 panic sites. The caller (the workspace layer)
/// decides which units the rule applies to and how the baseline
/// absorbs the result; inline annotations are honored here.
#[must_use]
pub fn check_unit(unit: &Unit) -> Vec<Violation> {
    let code = unit.code();
    let allowed = allowed_by_line(&unit.tokens);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if unit.parsed.in_test_span(i) {
            continue;
        }
        if let Some(f) = unit.parsed.fn_containing(i) {
            if f.test_only {
                continue;
            }
        }
        let Some(what) = panic_site(&code, i) else { continue };
        let line = code[i].line;
        if allowed.get(&line).is_some_and(|rs| rs.contains(&RuleId::D9)) {
            continue;
        }
        out.push(Violation {
            file: unit.path.clone(),
            line,
            rule: RuleId::D9,
            message: format!(
                "{what} can panic in an engine crate — return a typed error, or annotate \
                 with the invariant that makes it unreachable"
            ),
        });
    }
    out
}

/// A panic site at code index `i`, described for the message.
fn panic_site(code: &[&Token], i: usize) -> Option<String> {
    if let Some(name) = code[i].ident() {
        if matches!(name, "unwrap" | "unwrap_err" | "expect" | "expect_err")
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            return Some(format!("`.{name}()`"));
        }
        return None;
    }
    if code[i].is_punct('[') && i > 0 {
        let prev = code[i - 1];
        let postfix = match prev.ident() {
            Some(id) => !NON_INDEX_KEYWORDS.contains(&id),
            None => prev.is_punct(')') || prev.is_punct(']'),
        };
        if postfix {
            return Some("indexing".to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<u32> {
        let unit = Unit::new("crates/core/src/x.rs".into(), "core".into(), src);
        check_unit(&unit).iter().map(|v| v.line).collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    a + b
}
"#;
        assert_eq!(lines(src), vec![3, 4]);
    }

    #[test]
    fn unwrap_or_variants_are_not_panic_sites() {
        let src = r"
fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}
";
        assert_eq!(lines(src), Vec::<u32>::new());
    }

    #[test]
    fn postfix_indexing_is_flagged_but_literals_are_not() {
        let src = r"
fn f(v: &[u8], m: &HashMap<u32, u8>) -> u8 {
    let arr = [1u8, 2, 3];
    let _slice = &v[0..8];
    v[0] + m[&1]
}
";
        // Line 4: range slice; line 5: two index sites.
        assert_eq!(lines(src), vec![4, 5, 5]);
    }

    #[test]
    fn macros_attributes_and_types_do_not_look_like_indexing() {
        let src = r"
#[derive(Clone)]
struct S { buf: Vec<[u8; 8]> }
fn f() -> Vec<u8> {
    vec![0u8; 4]
}
fn g(v: Vec<u8>) {
    for _x in [1, 2, 3] {
        let _ = &v;
    }
}
";
        assert_eq!(lines(src), Vec::<u32>::new());
    }

    #[test]
    fn annotations_and_test_code_are_exempt() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    // detlint: allow(D9) — caller checked is_some() on the same branch
    x.unwrap()
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
"#;
        assert_eq!(lines(src), Vec::<u32>::new());
    }

    #[test]
    fn chained_call_result_indexing_is_flagged() {
        let src = r"
fn f(v: Vec<Vec<u8>>) -> u8 {
    v.clone()[0][1]
}
";
        assert_eq!(lines(src), vec![3, 3]);
    }
}
