//! The determinism & safety contract: the rule registry and the
//! per-file checking pass.
//!
//! The authoritative rule list is [`REGISTRY`] (one row per rule:
//! id, mnemonic name, producing pass, summary). `detlint rules`, the
//! generated comment table in `detlint.toml`, and the docs all render
//! from it; see [`rules_table`] and [`toml_rule_table`].
//!
//! A deliberate violation is suppressed in place with
//! `// detlint: allow(D2) — <reason>` either trailing the offending line
//! or on the line directly above it; the reason text is mandatory.
//! D9 findings may alternatively be absorbed by the committed
//! `detlint.baseline.json` (see [`crate::baseline`]) so the existing
//! panic surface can be burned down incrementally while CI gates new
//! findings.
//!
//! This module implements the *per-file* rules (D1–D6, D9 direct
//! sites). D2 is flow-sensitive since v2: a hash-ordered iteration only
//! fires when its order can escape — order-free terminal folds
//! (`sum`/`any`/…), collect-then-sort chains, and loop/closure bodies
//! that only fill subsequently-sorted collections are proven safe via
//! the item parser's function spans ([`crate::parse`]). Interprocedural
//! D1/D3 flows live in [`crate::dataflow`], the D7/D8 lock-order pass
//! in [`crate::locks`], and the D9 audit in [`crate::panic`].
//!
//! The engine is token-pattern based (see [`crate::lexer`]): it has no
//! type information, so D2 relies on a per-crate symbol table of names
//! declared with `HashMap`/`HashSet` types (fields, lets, struct-literal
//! initializers). A name declared as a non-map type in the *same file*
//! shadows a map-typed declaration elsewhere in the crate, which keeps
//! `objects: Vec<…>` in `table.rs` distinct from `objects: HashMap<…>`
//! in `reference.rs`. Closure parameters and freshly returned values are
//! invisible to the table — the rule is a tripwire for the common ways
//! nondeterminism sneaks in, not a type checker.

use crate::lexer::{lex, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of one contract rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    D9,
}

/// Which analysis pass produces a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Per-file token patterns (the PR-4 engine).
    Token,
    /// Per-file token patterns + workspace-wide interprocedural dataflow.
    Dataflow,
    /// Flow-sensitive per-function escape analysis.
    Flow,
    /// Lock-order pass over guard scopes and the call graph.
    LockOrder,
    /// Panic-surface audit (baselined via `detlint.baseline.json`).
    PanicAudit,
}

impl Pass {
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Pass::Token => "token",
            Pass::Dataflow => "token+dataflow",
            Pass::Flow => "flow",
            Pass::LockOrder => "lock-order",
            Pass::PanicAudit => "panic-audit",
        }
    }
}

/// One row of the rule registry. `detlint rules`, the generated comment
/// table in `detlint.toml`, the config parser, and the docs all derive
/// from this single table so they cannot drift.
pub struct RuleMeta {
    pub id: RuleId,
    pub name: &'static str,
    pub summary: &'static str,
    pub pass: Pass,
    /// Findings may be absorbed by `detlint.baseline.json` (burn-down
    /// rules); all other rules must be fixed or inline-annotated.
    pub baselined: bool,
}

/// The registry: the one authoritative description of the contract.
pub const REGISTRY: [RuleMeta; 9] = [
    RuleMeta {
        id: RuleId::D1,
        name: "wall-clock",
        summary: "wall-clock read outside the allowlisted harness modules",
        pass: Pass::Dataflow,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D2,
        name: "map-iter",
        summary: "order-dependent HashMap/HashSet iteration whose order can escape",
        pass: Pass::Flow,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D3,
        name: "unseeded-rng",
        summary: "ambient (unseeded) randomness source",
        pass: Pass::Dataflow,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D4,
        name: "undocumented-unsafe",
        summary: "`unsafe` without a nearby `// SAFETY:` comment",
        pass: Pass::Token,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D5,
        name: "bare-allow",
        summary: "#[allow(...)] without a reason comment",
        pass: Pass::Token,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D6,
        name: "stray-print",
        summary: "print macro in library code (route output through obs/bench)",
        pass: Pass::Token,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D7,
        name: "lock-order",
        summary: "lock acquisition cycle (potential deadlock) in the threaded cluster",
        pass: Pass::LockOrder,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D8,
        name: "held-across-send",
        summary: "mutex guard held across a channel send or thread join",
        pass: Pass::LockOrder,
        baselined: false,
    },
    RuleMeta {
        id: RuleId::D9,
        name: "panic-surface",
        summary: "unwrap/expect/slice-indexing in engine crates without a proven invariant",
        pass: Pass::PanicAudit,
        baselined: true,
    },
];

impl RuleId {
    pub const ALL: [RuleId; 9] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::D8,
        RuleId::D9,
    ];

    /// This rule's registry row.
    #[must_use]
    pub fn meta(self) -> &'static RuleMeta {
        &REGISTRY[self as usize]
    }

    /// Parses `"D1"` / `"d1"` / the mnemonic name (not `FromStr`: no error type).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        let lower = s.to_ascii_lowercase();
        REGISTRY
            .iter()
            .find(|m| lower == m.id.id().to_ascii_lowercase() || lower == m.name)
            .map(|m| m.id)
    }

    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::D8 => "D8",
            RuleId::D9 => "D9",
        }
    }

    #[must_use]
    pub fn name(self) -> &'static str {
        self.meta().name
    }

    #[must_use]
    pub fn summary(self) -> &'static str {
        self.meta().summary
    }
}

/// The `detlint rules` table, rendered from [`REGISTRY`].
#[must_use]
pub fn rules_table() -> String {
    let mut out = format!(
        "{:<4} {:<20} {:<15} summary\n",
        "id", "name", "pass"
    );
    for m in &REGISTRY {
        out.push_str(&format!(
            "{:<4} {:<20} {:<15} {}{}\n",
            m.id.id(),
            m.name,
            m.pass.label(),
            m.summary,
            if m.baselined { " [baselined]" } else { "" },
        ));
    }
    out
}

/// The canonical rule-table comment block embedded in `detlint.toml`
/// between the `# --- rule table` markers. `detlint rules --toml`
/// prints it; an engine test asserts the committed config matches, so
/// the config comments cannot drift from the registry.
#[must_use]
pub fn toml_rule_table() -> String {
    let mut out = String::from(
        "# --- rule table (generated: `detlint rules --toml`; do not edit by hand) ---\n",
    );
    for m in &REGISTRY {
        out.push_str(&format!(
            "#   {} {:<20} [{}]{} {}\n",
            m.id.id(),
            m.name,
            m.pass.label(),
            if m.baselined { " [baselined]" } else { "" },
            m.summary,
        ));
    }
    out.push_str("# --- end rule table ---\n");
    out
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: `file:line: detlint[D2]: message`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: detlint[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Names declared map-typed / non-map-typed, collected per file and
/// merged per crate for D2 resolution.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    pub map_names: BTreeSet<String>,
    pub nonmap_names: BTreeSet<String>,
}

/// Per-crate view: union of every file's declarations. A name is tracked
/// crate-wide only when no file in the crate declares it as a non-map
/// type, so shared field names with mixed types fall back to per-file
/// resolution.
#[derive(Debug, Default, Clone)]
pub struct CrateSymbols {
    pub per_file: BTreeMap<String, SymbolTable>,
}

impl CrateSymbols {
    #[must_use]
    pub fn crate_wide_map_names(&self) -> BTreeSet<String> {
        let mut maps = BTreeSet::new();
        let mut nonmaps = BTreeSet::new();
        for t in self.per_file.values() {
            maps.extend(t.map_names.iter().cloned());
            nonmaps.extend(t.nonmap_names.iter().cloned());
        }
        maps.retain(|n| !nonmaps.contains(n));
        maps
    }
}

const MAP_TYPES: [&str; 2] = ["HashMap", "HashSet"];
/// Methods whose visit order follows the hash order.
const ORDER_DEPENDENT_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "retain",
];
const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];
pub(crate) const AMBIENT_RNG_IDENTS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
    "DefaultHasher",
];

/// Scans declarations in one file: struct fields (`name: HashMap<…>`),
/// let bindings (`let name: HashMap<…>`, `let name = HashMap::new()`),
/// and struct-literal initializers (`name: HashMap::new()`).
#[must_use]
pub fn collect_symbols(tokens: &[Token]) -> SymbolTable {
    let mut table = SymbolTable::default();
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    for i in 0..code.len() {
        // `let [mut] name = <path>…` where the path mentions HashMap/HashSet.
        if code[i].ident() == Some("let") {
            let mut j = i + 1;
            if code.get(j).and_then(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            let Some(name) = code.get(j).and_then(|t| t.ident()) else {
                continue;
            };
            if code.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                let path = leading_path(&code[skip_ref_prefix(&code, j + 2)..]);
                if path.iter().any(|s| MAP_TYPES.contains(&s.as_str())) {
                    table.map_names.insert(name.to_string());
                }
            }
            // `let name: Type` falls through to the `name :` case below.
        }
        // `name : <type-path>` — field declarations, typed lets, and
        // struct-literal initializers.
        if code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            // `::` is a path separator, not an ascription.
            && !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !code.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
        {
            let Some(name) = code[i].ident() else { continue };
            if name.chars().next().is_some_and(char::is_uppercase) {
                continue; // enum variant / struct path, not a binding
            }
            let path = leading_path(&code[skip_ref_prefix(&code, i + 2)..]);
            if path.iter().any(|s| MAP_TYPES.contains(&s.as_str())) {
                table.map_names.insert(name.to_string());
            } else if path
                .iter()
                .any(|s| s.chars().next().is_some_and(char::is_uppercase))
            {
                // A real type path that is not a map (e.g. `Vec`, `BTreeMap`)
                // marks the name non-map *for this file*. Lowercase-only
                // paths are struct-pattern bindings (`Foo { txns: t }`) and
                // prove nothing about the field's type.
                table.nonmap_names.insert(name.to_string());
            }
        }
    }
    table
}

/// Skips reference sigils so `m: &'a mut HashMap<…>` registers `m` the
/// same as an owned binding.
fn skip_ref_prefix(code: &[&Token], mut j: usize) -> usize {
    while code.get(j).is_some_and(|t| {
        t.is_punct('&') || t.kind == TokKind::Lifetime || t.ident() == Some("mut")
    }) {
        j += 1;
    }
    j
}

/// The identifier path starting at `code[0]`: `std :: collections ::
/// HashMap` → `["std", "collections", "HashMap"]`. Stops at the first
/// token that is neither an ident nor a `::` separator; also swallows
/// one level of `<…>` so `Option<HashMap<…>>` exposes `HashMap`.
fn leading_path(code: &[&Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut depth = 0u32;
    while i < code.len() {
        match &code[i].kind {
            TokKind::Ident(s) => {
                out.push(s.clone());
                i += 1;
            }
            TokKind::Punct(':')
                if code.get(i + 1).is_some_and(|t| t.is_punct(':')) =>
            {
                i += 2;
            }
            TokKind::Punct('<') if depth == 0 && !out.is_empty() => {
                depth = 1;
                i += 1;
            }
            TokKind::Punct('>') if depth == 1 => {
                depth = 0;
                i += 1;
            }
            TokKind::Punct(',') if depth == 1 => {
                i += 1;
            }
            _ if depth == 1 => {
                i += 1;
                if i > 64 {
                    break; // defensive bound on generic-argument scans
                }
            }
            _ => break,
        }
    }
    out
}

/// Inline suppressions and their reasons, by target line.
#[derive(Debug, Default)]
struct Annotations {
    /// line → rules allowed on that line.
    allowed: BTreeMap<u32, BTreeSet<RuleId>>,
    /// Annotations missing a reason (reported as violations of the
    /// contract itself).
    bad: Vec<(u32, String)>,
    /// Total well-formed suppressions in the file.
    count: u32,
}

/// Parses `// detlint: allow(D2, D6) — reason` out of comment tokens. A
/// trailing comment applies to its own line; a standalone comment
/// applies to the next line that has code.
fn collect_annotations(tokens: &[Token]) -> Annotations {
    let mut ann = Annotations::default();
    for (idx, tok) in tokens.iter().enumerate() {
        let (text, trailing) = match &tok.kind {
            TokKind::LineComment { text, trailing } => (text.as_str(), *trailing),
            TokKind::BlockComment { text } => (text.as_str(), true),
            _ => continue,
        };
        let Some(rest) = text.split("detlint:").nth(1) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            ann.bad.push((tok.line, "unrecognized detlint directive (expected `allow(...)`)".into()));
            continue;
        };
        let Some(open) = rest.find('(') else {
            ann.bad.push((tok.line, "missing `(` after `allow`".into()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            ann.bad.push((tok.line, "missing `)` in allow(...)".into()));
            continue;
        };
        let mut rules = BTreeSet::new();
        let mut parse_ok = true;
        for part in rest[open + 1..close].split(',') {
            match RuleId::parse(part.trim()) {
                Some(r) => {
                    rules.insert(r);
                }
                None => {
                    ann.bad
                        .push((tok.line, format!("unknown rule `{}`", part.trim())));
                    parse_ok = false;
                }
            }
        }
        if !parse_ok {
            continue;
        }
        // A reason is mandatory: any word characters after the `)`.
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        if reason.is_empty() {
            ann.bad.push((
                tok.line,
                "suppression has no reason (write `// detlint: allow(Dn) — why`)".into(),
            ));
            continue;
        }
        let target = if trailing {
            tok.line
        } else {
            // Standalone: the next line carrying code (skipping further
            // comment-only lines so annotations can sit above a doc'd item).
            tokens[idx + 1..]
                .iter()
                .find(|t| t.is_code())
                .map_or(tok.line + 1, |t| t.line)
        };
        ann.count += u32::from(!rules.is_empty());
        ann.allowed.entry(target).or_default().extend(rules);
    }
    ann
}

/// Well-formed inline suppressions by target line — the workspace-level
/// passes (dataflow, lock order, panic audit) honor the same inline
/// `allow(…)` annotations as the per-file engine.
#[must_use]
pub fn allowed_by_line(tokens: &[Token]) -> BTreeMap<u32, BTreeSet<RuleId>> {
    collect_annotations(tokens).allowed
}

/// Everything the checker needs to know about the file being linted.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// D1/D3 exempt (allowlisted wall-clock / rng module).
    pub allow_wall_clock: bool,
    pub allow_rng: bool,
    /// File lies in a deterministic crate → D2 applies.
    pub deterministic: bool,
    /// File is library code → D6 applies.
    pub library: bool,
    /// D6 exempt by config even if `library`.
    pub allow_print: bool,
    /// Map-typed names visible crate-wide (conflict-free across files).
    pub crate_map_names: &'a BTreeSet<String>,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub suppressions: u32,
}

/// Lints one file's source text.
#[must_use]
pub fn check_file(src: &str, ctx: &FileContext<'_>) -> FileReport {
    let tokens = lex(src);
    let symbols = collect_symbols(&tokens);
    let ann = collect_annotations(&tokens);
    let mut report = FileReport {
        suppressions: ann.count,
        ..FileReport::default()
    };
    for (line, msg) in &ann.bad {
        report.violations.push(Violation {
            file: ctx.path.to_string(),
            line: *line,
            rule: RuleId::D5,
            message: format!("malformed suppression: {msg}"),
        });
    }

    // Lines with a SAFETY: comment (the comment itself or the next code
    // line satisfy D4 if within reach).
    let safety_lines: BTreeSet<u32> = tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::LineComment { text, .. } | TokKind::BlockComment { text }
                if text.contains("SAFETY:") =>
            {
                Some(t.line)
            }
            _ => None,
        })
        .collect();
    // Lines carrying any comment at all (for D5's reason requirement).
    let comment_lines: BTreeSet<u32> = tokens
        .iter()
        .filter(|t| !t.is_code())
        .map(|t| t.line)
        .collect();

    let emit = |rule: RuleId, line: u32, message: String, report: &mut FileReport| {
        if ann
            .allowed
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule))
        {
            return;
        }
        report.violations.push(Violation {
            file: ctx.path.to_string(),
            line,
            rule,
            message,
        });
    };

    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let parsed = crate::parse::parse_file(&code);
    for i in 0..code.len() {
        let t = code[i];
        let Some(name) = t.ident() else {
            // D5: `#[allow(` / `#![allow(`.
            if t.is_punct('#') {
                let mut j = i + 1;
                if code.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if code.get(j).is_some_and(|t| t.is_punct('['))
                    && code.get(j + 1).and_then(|t| t.ident()) == Some("allow")
                    && code.get(j + 2).is_some_and(|t| t.is_punct('('))
                {
                    let line = t.line;
                    let has_reason = comment_lines.contains(&line)
                        || comment_lines.contains(&line.saturating_sub(1));
                    if !has_reason {
                        emit(
                            RuleId::D5,
                            line,
                            "#[allow(...)] without a reason comment on this or the previous line"
                                .to_string(),
                            &mut report,
                        );
                    }
                }
            }
            continue;
        };

        let followed_by = |j: usize, c: char| code.get(i + j).is_some_and(|t| t.is_punct(c));
        let path_call = |seg: &str| {
            followed_by(1, ':')
                && followed_by(2, ':')
                && code.get(i + 3).and_then(|t| t.ident()) == Some(seg)
        };

        // D1: wall-clock reads.
        if !ctx.allow_wall_clock {
            if name == "Instant" && path_call("now") {
                emit(
                    RuleId::D1,
                    t.line,
                    "`Instant::now()` in deterministic code — simulation time must come from the event clock".to_string(),
                    &mut report,
                );
            }
            if name == "SystemTime" && followed_by(1, ':') && followed_by(2, ':') {
                emit(
                    RuleId::D1,
                    t.line,
                    "`SystemTime` access in deterministic code".to_string(),
                    &mut report,
                );
            }
        }

        // D3: ambient randomness.
        if !ctx.allow_rng {
            if AMBIENT_RNG_IDENTS.contains(&name) {
                emit(
                    RuleId::D3,
                    t.line,
                    format!("`{name}` is an unseeded randomness source — use the seeded `Prng`"),
                    &mut report,
                );
            }
            if name == "rand" && followed_by(1, ':') && followed_by(2, ':') {
                emit(
                    RuleId::D3,
                    t.line,
                    "`rand::` path — the workspace PRNG is `siteselect_sim::Prng`".to_string(),
                    &mut report,
                );
            }
        }

        // D4: undocumented unsafe.
        if name == "unsafe" {
            let line = t.line;
            let documented = (line.saturating_sub(3)..=line)
                .any(|l| safety_lines.contains(&l));
            if !documented {
                emit(
                    RuleId::D4,
                    line,
                    "`unsafe` without a `// SAFETY:` comment on or within 3 lines above"
                        .to_string(),
                    &mut report,
                );
            }
        }

        // D6: print macros in library code.
        if ctx.library
            && !ctx.allow_print
            && PRINT_MACROS.contains(&name)
            && followed_by(1, '!')
        {
            emit(
                RuleId::D6,
                t.line,
                format!("`{name}!` in library code — emit through `obs` events or return strings"),
                &mut report,
            );
        }

        // D2: order-dependent iteration in deterministic crates.
        if ctx.deterministic {
            let is_map_name = |n: &str| {
                if symbols.nonmap_names.contains(n) && !symbols.map_names.contains(n) {
                    false
                } else {
                    symbols.map_names.contains(n) || ctx.crate_map_names.contains(n)
                }
            };
            // `<name> . <method> (`
            if followed_by(1, '.')
                && code.get(i + 3).is_some_and(|t| t.is_punct('('))
            {
                if let Some(method) = code.get(i + 2).and_then(|t| t.ident()) {
                    if ORDER_DEPENDENT_METHODS.contains(&method)
                        && is_map_name(name)
                        && !crate::flow::method_site_is_safe(&code, &parsed, i, method)
                    {
                        emit(
                            RuleId::D2,
                            t.line,
                            format!(
                                "`.{method}()` on hash-ordered `{name}` — iteration order escapes; collect-and-sort or annotate"
                            ),
                            &mut report,
                        );
                    }
                }
            }
            // `for <pat> in [&[mut]] [self.]<name> {`
            if name == "for" {
                if let Some((target, line, body_rel)) = for_loop_target(&code[i..]) {
                    if is_map_name(&target)
                        && !crate::flow::loop_site_is_safe(&code, &parsed, i + body_rel)
                    {
                        emit(
                            RuleId::D2,
                            line,
                            format!(
                                "`for … in` over hash-ordered `{target}` — iteration order escapes; collect-and-sort or annotate"
                            ),
                            &mut report,
                        );
                    }
                }
            }
        }
    }
    report
}

/// For `code` starting at a `for` token, returns the identifier being
/// iterated and the offset of the loop body's `{` when the loop has the
/// direct shape `for <pat> in [&][mut] [self .] name {` — method chains
/// after the name are handled by the method-call check instead.
fn for_loop_target(code: &[&Token]) -> Option<(String, u32, usize)> {
    // Find `in` within a short window, stopping at tokens that cannot
    // appear in a loop pattern — `impl Display for Foo {` must not scan
    // into the impl body and pick up an unrelated `in`.
    let mut j = 1;
    loop {
        let t = code.get(j)?;
        if t.ident() == Some("in") {
            break;
        }
        if t.is_punct('{') || t.is_punct(';') || t.is_punct('}') || j > 24 {
            return None;
        }
        j += 1;
    }
    let mut k = j + 1;
    while code.get(k).is_some_and(|t| t.is_punct('&'))
        || code.get(k).and_then(|t| t.ident()) == Some("mut")
    {
        k += 1;
    }
    if code.get(k).and_then(|t| t.ident()) == Some("self")
        && code.get(k + 1).is_some_and(|t| t.is_punct('.'))
    {
        k += 2;
    }
    let name = code.get(k).and_then(|t| t.ident())?;
    if code.get(k + 1).is_some_and(|t| t.is_punct('{')) {
        return Some((name.to_string(), code[k].line, k + 1));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_det(crate_maps: &BTreeSet<String>) -> FileContext<'_> {
        FileContext {
            path: "crates/sim/src/test.rs",
            allow_wall_clock: false,
            allow_rng: false,
            deterministic: true,
            library: true,
            allow_print: false,
            crate_map_names: crate_maps,
        }
    }

    fn rules_of(report: &FileReport) -> Vec<RuleId> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d1_fires_and_allowlists() {
        let empty = BTreeSet::new();
        let src = "fn f() { let t = Instant::now(); }";
        let r = check_file(src, &ctx_det(&empty));
        assert_eq!(rules_of(&r), vec![RuleId::D1]);
        let mut ctx = ctx_det(&empty);
        ctx.allow_wall_clock = true;
        assert!(check_file(src, &ctx).violations.is_empty());
    }

    #[test]
    fn d2_detects_field_and_local_iteration() {
        let empty = BTreeSet::new();
        let src = r"
struct S { txns: HashMap<u32, u32> }
impl S {
    fn f(&self) {
        for (k, v) in &self.txns {}
        let local = HashMap::new();
        for x in &local {}
        let ks: Vec<_> = self.txns.keys().collect();
    }
}
";
        let r = check_file(src, &ctx_det(&empty));
        assert_eq!(rules_of(&r), vec![RuleId::D2, RuleId::D2, RuleId::D2]);
    }

    #[test]
    fn d2_respects_per_file_nonmap_shadowing() {
        // `objects` is map-typed crate-wide but Vec in this file.
        let crate_maps: BTreeSet<String> = ["objects".to_string()].into();
        let src = r"
struct T { objects: Vec<u32> }
impl T {
    fn f(&self) { for x in self.objects.iter() {} }
}
";
        let r = check_file(src, &ctx_det(&crate_maps));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // …but a file with no local declaration trusts the crate table.
        let src2 = "fn g() { for x in &objects {} }";
        let r2 = check_file(src2, &ctx_det(&crate_maps));
        assert_eq!(rules_of(&r2), vec![RuleId::D2]);
    }

    #[test]
    fn d2_annotation_suppresses_with_reason() {
        let empty = BTreeSet::new();
        let src = r"
fn f(m: &S) {
    let mut dead: Vec<u32> = Vec::new();
    let txns: HashMap<u32, u32> = HashMap::new();
    // detlint: allow(D2) — keys are collected and sorted below
    let mut ks: Vec<_> = txns.keys().collect();
    ks.sort_unstable();
    let vs: Vec<_> = txns.values().collect(); // detlint: allow(D2) — summed, order-free
}
";
        let r = check_file(src, &ctx_det(&empty));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressions, 2);
    }

    #[test]
    fn annotation_without_reason_is_a_violation() {
        let empty = BTreeSet::new();
        let src = "// detlint: allow(D2)\nfn f() {}\n";
        let r = check_file(src, &ctx_det(&empty));
        assert_eq!(rules_of(&r), vec![RuleId::D5]);
    }

    #[test]
    fn d4_wants_safety_comment() {
        let empty = BTreeSet::new();
        let bad = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        let good = "// SAFETY: guarded by the bounds check above\nfn f() { unsafe { q() } }";
        assert_eq!(rules_of(&check_file(bad, &ctx_det(&empty))), vec![RuleId::D4]);
        assert!(check_file(good, &ctx_det(&empty)).violations.is_empty());
    }

    #[test]
    fn d5_wants_reason_comment() {
        let empty = BTreeSet::new();
        let bad = "#[allow(dead_code)]\nfn f() {}";
        let good = "// dead until the follow-up PR lands\n#[allow(dead_code)]\nfn f() {}";
        let trailing = "#[allow(dead_code)] // bench-only helper\nfn f() {}";
        assert_eq!(rules_of(&check_file(bad, &ctx_det(&empty))), vec![RuleId::D5]);
        assert!(check_file(good, &ctx_det(&empty)).violations.is_empty());
        assert!(check_file(trailing, &ctx_det(&empty)).violations.is_empty());
    }

    #[test]
    fn d6_only_in_library_files() {
        let empty = BTreeSet::new();
        let src = "fn f() { println!(\"x\"); }";
        assert_eq!(rules_of(&check_file(src, &ctx_det(&empty))), vec![RuleId::D6]);
        let mut ctx = ctx_det(&empty);
        ctx.library = false;
        assert!(check_file(src, &ctx).violations.is_empty());
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let empty = BTreeSet::new();
        let src = "//! println!(\"{}\", x);\n/// Instant::now() example\nfn f() {}";
        assert!(check_file(src, &ctx_det(&empty)).violations.is_empty());
    }
}
