//! Workspace-wide function index and call graph.
//!
//! Built on [`crate::parse`]: every parsed function becomes a node, and
//! a token scan over each body extracts call sites, resolved through a
//! deliberately conservative name-resolution scheme:
//!
//! * **path calls** — `crate::`/`self::`/`super::` stay in the caller's
//!   crate; `siteselect_<x>::…` (and a bare workspace crate name, which
//!   fixtures use) cross into crate `x`; `use` aliases are expanded
//!   first; `Self::`/`Type::` match impl blocks by self type. Middle
//!   path segments filter candidates by module path / file name, but a
//!   filter that would drop *every* candidate is ignored (better a
//!   spurious edge than a silently missing one — taint is a
//!   may-analysis).
//! * **method calls** — `self.name(…)` resolves against the enclosing
//!   impl's self type; any other receiver resolves only when the method
//!   name is unique across the whole workspace *and* not a common std
//!   method name ([`STD_METHODS`]); otherwise the call is unresolved.
//!   This keeps `.lock()`, `.now()`, `.send()` from aliasing workspace
//!   functions they don't call.
//!
//! Unresolved calls simply produce no edge: downstream passes
//! ([`crate::dataflow`], [`crate::locks`]) treat missing edges as
//! "no propagation", and their *direct* token-level detection covers
//! the primitives (`Instant::now`, `.send(`) that hide behind std
//! method names.

use crate::lexer::{lex, Token};
use crate::parse::{code_tokens, parse_file, FnDef, ParsedFile};
use std::collections::BTreeMap;

/// One source file, lexed and parsed, ready for graph passes.
pub struct Unit {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Short crate name (`core`, `sim`, `root`, …).
    pub crate_name: String,
    pub tokens: Vec<Token>,
    pub parsed: ParsedFile,
}

impl Unit {
    #[must_use]
    pub fn new(path: String, crate_name: String, src: &str) -> Unit {
        let tokens = lex(src);
        let parsed = {
            let code = code_tokens(&tokens);
            parse_file(&code)
        };
        Unit {
            path,
            crate_name,
            tokens,
            parsed,
        }
    }

    /// The code-token view body spans index into.
    #[must_use]
    pub fn code(&self) -> Vec<&Token> {
        code_tokens(&self.tokens)
    }
}

pub type FnId = usize;

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the unit slice the graph was built from.
    pub unit: usize,
    /// Index into that unit's `parsed.fns`.
    pub def: usize,
    /// Display name: `crate::[Type::]name`.
    pub qualified: String,
}

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: FnId,
    pub line: u32,
    /// Code-token index of the callee name in the caller's unit.
    pub tok: usize,
    /// The callee path as written at the call site.
    pub display: String,
}

/// The workspace call graph.
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Outgoing calls, indexed by caller [`FnId`].
    pub calls: Vec<Vec<Call>>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 24] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "mut", "let",
    "ref", "unsafe", "async", "await", "dyn", "where", "break", "continue", "use", "pub", "box",
    "yield",
];

/// Item keywords: an identifier right after one of these is a
/// *definition*, not a call.
const DEF_KEYWORDS: [&str; 8] = [
    "fn", "struct", "enum", "union", "trait", "impl", "mod", "macro_rules",
];

/// Common std/ecosystem method names that must never resolve to a
/// workspace function by mere name uniqueness.
const STD_METHODS: [&str; 78] = [
    "new", "default", "clone", "len", "is_empty", "iter", "iter_mut", "into_iter", "get",
    "get_mut", "insert", "remove", "push", "pop", "extend", "drain", "clear", "contains",
    "contains_key", "keys", "values", "values_mut", "entry", "sort", "sort_unstable", "sort_by",
    "sort_by_key", "sort_unstable_by", "sort_unstable_by_key", "map", "and_then", "or_else",
    "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "expect", "ok", "err", "take",
    "replace", "as_ref", "as_mut", "as_str", "as_slice", "to_string", "to_vec", "to_owned",
    "into", "from", "lock", "try_lock", "send", "recv", "try_recv", "join", "spawn", "now",
    "elapsed", "next", "peek", "fmt", "eq", "cmp", "hash", "min", "max", "abs", "first", "last",
    "split", "trim", "parse", "collect", "filter", "fold", "find", "position",
];

/// Std path heads: `std::…`, `core::…` (the *std* core, not
/// `crates/core` — workspace code reaches that via `siteselect_core`).
const STD_HEADS: [&str; 3] = ["std", "core", "alloc"];

impl CallGraph {
    /// Builds the graph over `units`.
    #[must_use]
    #[allow(clippy::too_many_lines)] // linear build: index, then one scan per body
    pub fn build(units: &[Unit]) -> CallGraph {
        // ---- function index ----
        let mut fns: Vec<FnNode> = Vec::new();
        // (crate, name) → candidates; (crate, self_ty, name) → candidates.
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut by_ty: BTreeMap<(String, String, String), Vec<FnId>> = BTreeMap::new();
        // Method-name uniqueness table (has_self only).
        let mut methods: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut crate_names: Vec<&str> = Vec::new();
        for (u, unit) in units.iter().enumerate() {
            if !crate_names.contains(&unit.crate_name.as_str()) {
                crate_names.push(&unit.crate_name);
            }
            for (d, def) in unit.parsed.fns.iter().enumerate() {
                let id = fns.len();
                let qualified = match &def.self_ty {
                    Some(ty) => format!("{}::{}::{}", unit.crate_name, ty, def.name),
                    None => format!("{}::{}", unit.crate_name, def.name),
                };
                fns.push(FnNode {
                    unit: u,
                    def: d,
                    qualified,
                });
                by_name.entry(def.name.clone()).or_default().push(id);
                by_crate_name
                    .entry((unit.crate_name.clone(), def.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(ty) = &def.self_ty {
                    by_ty
                        .entry((unit.crate_name.clone(), ty.clone(), def.name.clone()))
                        .or_default()
                        .push(id);
                }
                if def.has_self {
                    methods.entry(def.name.clone()).or_default().push(id);
                }
            }
        }

        let index = Index {
            units,
            fns: &fns,
            by_name,
            by_crate_name,
            by_ty,
            methods,
            crate_names,
        };

        // ---- call extraction ----
        let mut calls: Vec<Vec<Call>> = vec![Vec::new(); fns.len()];
        let mut fn_ids_by_unit: Vec<Vec<FnId>> = vec![Vec::new(); units.len()];
        for (id, node) in fns.iter().enumerate() {
            fn_ids_by_unit[node.unit].push(id);
        }
        for (u, unit) in units.iter().enumerate() {
            let code = unit.code();
            let aliases = alias_map(&unit.parsed);
            for &caller in &fn_ids_by_unit[u] {
                let def = &unit.parsed.fns[fns[caller].def];
                let Some((s, e)) = def.body else { continue };
                for i in s..e {
                    // Attribute calls in nested fns to the inner fn only.
                    if unit
                        .parsed
                        .fn_containing(i)
                        .is_none_or(|f| !std::ptr::eq(f, def))
                    {
                        continue;
                    }
                    let Some(site) = call_site_at(&code, i) else {
                        continue;
                    };
                    let targets = index.resolve(u, def, &aliases, &site);
                    for callee in targets {
                        calls[caller].push(Call {
                            callee,
                            line: code[i].line,
                            tok: i,
                            display: site.display(),
                        });
                    }
                }
            }
        }
        CallGraph { fns, calls }
    }

    /// The function definition behind a node.
    #[must_use]
    pub fn def<'u>(&self, units: &'u [Unit], id: FnId) -> &'u FnDef {
        let node = &self.fns[id];
        &units[node.unit].parsed.fns[node.def]
    }
}

/// File-local `use` aliases: alias → full path segments.
#[must_use]
pub fn alias_map(parsed: &ParsedFile) -> BTreeMap<&str, &[String]> {
    let mut out = BTreeMap::new();
    for u in &parsed.uses {
        out.insert(u.alias.as_str(), u.path.as_slice());
    }
    out
}

/// A syntactic call site: either a (possibly qualified) path call or a
/// method call.
pub enum CallSite {
    /// `a::b::name(…)` — `segs` includes the final name.
    Path { segs: Vec<String> },
    /// `recv.name(…)`; `self_recv` when the receiver chain is exactly
    /// `self`.
    Method { name: String, self_recv: bool },
}

impl CallSite {
    fn display(&self) -> String {
        match self {
            CallSite::Path { segs } => segs.join("::"),
            CallSite::Method { name, self_recv } => {
                if *self_recv {
                    format!("self.{name}")
                } else {
                    format!(".{name}")
                }
            }
        }
    }
}

/// Classifies the token at `i` as a call site, if it is one.
/// Recognizes `name(`, `name::<T>(`, `path::name(`, and `.name(`.
#[must_use]
pub fn call_site_at(code: &[&Token], i: usize) -> Option<CallSite> {
    let name = code[i].ident()?;
    if NON_CALL_KEYWORDS.contains(&name) || DEF_KEYWORDS.contains(&name) {
        return None;
    }
    // `(` must follow, possibly after a turbofish.
    let mut j = i + 1;
    if punct(code, j, ':') && punct(code, j + 1, ':') && punct(code, j + 2, '<') {
        j = skip_generics(code, j + 2);
    }
    if !punct(code, j, '(') {
        return None;
    }
    // A definition, an attribute argument list, or a macro name is not a call.
    let prev_ident = |k: usize| i.checked_sub(k).and_then(|p| code.get(p)).and_then(|t| t.ident());
    if prev_ident(1).is_some_and(|p| DEF_KEYWORDS.contains(&p)) {
        return None;
    }
    if punct(code, i + 1, '!') {
        return None; // macro invocation (its arguments are scanned separately)
    }
    if i >= 2 && punct(code, i - 1, '[') && punct(code, i - 2, '#') {
        return None; // `#[cfg(…)]`-style attribute head
    }
    if i >= 3 && punct(code, i - 1, '[') && punct(code, i - 2, '!') && punct(code, i - 3, '#') {
        return None;
    }
    // Method call?
    if i >= 1 && punct(code, i - 1, '.') {
        let self_recv = i >= 2
            && code[i - 2].ident() == Some("self")
            && !(i >= 3 && punct(code, i - 3, '.'));
        return Some(CallSite::Method {
            name: name.to_string(),
            self_recv,
        });
    }
    // Walk the leading path backwards: `seg :: seg :: name`.
    let mut segs = vec![name.to_string()];
    let mut k = i;
    while k >= 3 && punct(code, k - 1, ':') && punct(code, k - 2, ':') {
        // `>::name(` (qualified generic paths) stops the walk — the head
        // is a type expression we don't model.
        let Some(seg) = code[k - 3].ident() else { break };
        segs.insert(0, seg.to_string());
        k -= 3;
    }
    Some(CallSite::Path { segs })
}

fn punct(code: &[&Token], i: usize, c: char) -> bool {
    code.get(i).is_some_and(|t| t.is_punct(c))
}

/// Skips `<…>` starting at `open` (`code[open]` is `<`), `->`-aware;
/// returns the index one past the matching `>`.
fn skip_generics(code: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < code.len() {
        if punct(code, k, '-') && punct(code, k + 1, '>') {
            k += 2;
            continue;
        }
        if punct(code, k, '<') {
            depth += 1;
        } else if punct(code, k, '>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Immutable resolution context.
struct Index<'a> {
    units: &'a [Unit],
    fns: &'a [FnNode],
    by_name: BTreeMap<String, Vec<FnId>>,
    by_crate_name: BTreeMap<(String, String), Vec<FnId>>,
    by_ty: BTreeMap<(String, String, String), Vec<FnId>>,
    methods: BTreeMap<String, Vec<FnId>>,
    crate_names: Vec<&'a str>,
}

impl Index<'_> {
    /// Resolves a call site in `unit_idx` (inside `enclosing`) to zero
    /// or more candidate functions.
    fn resolve(
        &self,
        unit_idx: usize,
        enclosing: &FnDef,
        aliases: &BTreeMap<&str, &[String]>,
        site: &CallSite,
    ) -> Vec<FnId> {
        match site {
            CallSite::Method { name, self_recv } => {
                self.resolve_method(unit_idx, enclosing, name, *self_recv)
            }
            CallSite::Path { segs } => self.resolve_path(unit_idx, enclosing, aliases, segs),
        }
    }

    fn resolve_method(
        &self,
        unit_idx: usize,
        enclosing: &FnDef,
        name: &str,
        self_recv: bool,
    ) -> Vec<FnId> {
        if self_recv {
            // `self.name(…)` — a method on the enclosing impl's type.
            if let Some(ty) = &enclosing.self_ty {
                let crate_name = &self.units[unit_idx].crate_name;
                if let Some(c) =
                    self.by_ty
                        .get(&(crate_name.clone(), ty.clone(), name.to_string()))
                {
                    return c.clone();
                }
            }
            return Vec::new();
        }
        // Arbitrary receiver: name must be workspace-unique and not a
        // std method name.
        if STD_METHODS.contains(&name) {
            return Vec::new();
        }
        match self.methods.get(name) {
            Some(c) if c.len() == 1 => c.clone(),
            _ => Vec::new(),
        }
    }

    fn resolve_path(
        &self,
        unit_idx: usize,
        enclosing: &FnDef,
        aliases: &BTreeMap<&str, &[String]>,
        segs: &[String],
    ) -> Vec<FnId> {
        let unit = &self.units[unit_idx];
        if segs.len() == 1 {
            let name = &segs[0];
            // A `use` alias naming a function directly.
            if let Some(path) = aliases.get(name.as_str()) {
                if path.last() == Some(name) && path.len() > 1 {
                    return self.resolve_expanded(unit_idx, enclosing, path);
                }
            }
            // Same-file first (any module), then same-crate.
            let in_crate = self
                .by_crate_name
                .get(&(unit.crate_name.clone(), name.clone()))
                .cloned()
                .unwrap_or_default();
            let in_file: Vec<FnId> = in_crate
                .iter()
                .copied()
                .filter(|&id| self.fns[id].unit == unit_idx)
                .collect();
            return if in_file.is_empty() { in_crate } else { in_file };
        }
        // Expand a leading alias (`use crate::queue as q; q::push()`).
        let head = &segs[0];
        if let Some(prefix) = aliases.get(head.as_str()) {
            let mut expanded: Vec<String> = prefix.to_vec();
            expanded.extend(segs[1..].iter().cloned());
            return self.resolve_expanded(unit_idx, enclosing, &expanded);
        }
        self.resolve_expanded(unit_idx, enclosing, segs)
    }

    /// Resolves a fully-expanded path (aliases already substituted).
    fn resolve_expanded(
        &self,
        unit_idx: usize,
        enclosing: &FnDef,
        segs: &[String],
    ) -> Vec<FnId> {
        let unit = &self.units[unit_idx];
        let head = segs[0].as_str();
        let name = segs.last().expect("non-empty path").clone();
        let mids = &segs[1..segs.len() - 1];
        if STD_HEADS.contains(&head) {
            return Vec::new(); // std / std-core / alloc
        }
        if head == "crate" || head == "self" || head == "super" {
            let cands = self
                .by_crate_name
                .get(&(unit.crate_name.clone(), name))
                .cloned()
                .unwrap_or_default();
            return self.filter_mods(cands, mids);
        }
        if head == "Self" {
            if let Some(ty) = &enclosing.self_ty {
                return self
                    .by_ty
                    .get(&(unit.crate_name.clone(), ty.clone(), name))
                    .cloned()
                    .unwrap_or_default();
            }
            return Vec::new();
        }
        // Cross-crate: `siteselect_<x>::…` or a bare workspace crate name.
        let target_crate = head
            .strip_prefix("siteselect_")
            .or_else(|| self.crate_names.iter().copied().find(|c| *c == head));
        if let Some(c) = target_crate {
            let cands = self
                .by_crate_name
                .get(&(c.to_string(), name))
                .cloned()
                .unwrap_or_default();
            return self.filter_mods(cands, mids);
        }
        // `Type::assoc(…)` — match impl blocks by self type, same crate
        // first, then workspace-unique.
        if head.chars().next().is_some_and(char::is_uppercase) {
            if let Some(c) = self
                .by_ty
                .get(&(unit.crate_name.clone(), head.to_string(), name.clone()))
            {
                return c.clone();
            }
            let all: Vec<FnId> = self
                .by_ty
                .iter()
                .filter(|((_, ty, n), _)| ty == head && *n == name)
                .flat_map(|(_, ids)| ids.iter().copied())
                .collect();
            let distinct_crates: std::collections::BTreeSet<&str> = all
                .iter()
                .map(|&id| self.units[self.fns[id].unit].crate_name.as_str())
                .collect();
            if distinct_crates.len() == 1 {
                return all;
            }
            return Vec::new();
        }
        // Lowercase unknown head: a local module path without `self::`
        // (`queue::push(…)`), or a module path of another crate brought
        // in by a glob / extern alias. Require a *strict* module match —
        // an external crate path must not degrade into a name-only hit.
        let full_mids: Vec<String> = segs[..segs.len() - 1].to_vec();
        let in_crate = self
            .by_crate_name
            .get(&(unit.crate_name.clone(), name.clone()))
            .cloned()
            .unwrap_or_default();
        let local = self.strict_filter_mods(&in_crate, &full_mids);
        if local.len() == 1 {
            return local;
        }
        let everywhere = self.by_name.get(&name).cloned().unwrap_or_default();
        let global = self.strict_filter_mods(&everywhere, &full_mids);
        if global.len() == 1 {
            global
        } else {
            Vec::new()
        }
    }

    /// True when `id`'s module path / file path / self type mentions `m`.
    fn mentions(&self, id: FnId, m: &str) -> bool {
        let node = &self.fns[id];
        let unit = &self.units[node.unit];
        let def = &unit.parsed.fns[node.def];
        def.module.iter().any(|seg| seg == m)
            || def.self_ty.as_deref() == Some(m)
            || unit
                .path
                .split('/')
                .any(|comp| comp == m || comp.strip_suffix(".rs") == Some(m))
    }

    /// [`Self::filter_mods`] without the empty-result fallback.
    fn strict_filter_mods(&self, cands: &[FnId], mids: &[String]) -> Vec<FnId> {
        cands
            .iter()
            .copied()
            .filter(|&id| mids.iter().all(|m| self.mentions(id, m)))
            .collect()
    }

    /// Keeps candidates whose module path / file path / self type
    /// mentions every middle segment; an empty result falls back to the
    /// unfiltered set (may-analysis: prefer spurious edges to missing
    /// ones).
    fn filter_mods(&self, cands: Vec<FnId>, mids: &[String]) -> Vec<FnId> {
        if mids.is_empty() || cands.is_empty() {
            return cands;
        }
        let filtered = self.strict_filter_mods(&cands, mids);
        if filtered.is_empty() {
            cands
        } else {
            filtered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str, &str)]) -> (Vec<Unit>, CallGraph) {
        let units: Vec<Unit> = files
            .iter()
            .map(|(path, krate, src)| Unit::new((*path).into(), (*krate).into(), src))
            .collect();
        let g = CallGraph::build(&units);
        (units, g)
    }

    fn edges(g: &CallGraph) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (caller, calls) in g.calls.iter().enumerate() {
            for c in calls {
                out.push((g.fns[caller].qualified.clone(), g.fns[c.callee].qualified.clone()));
            }
        }
        out
    }

    #[test]
    fn bare_and_crate_qualified_calls_resolve_in_crate() {
        let (_, g) = graph(&[(
            "crates/core/src/lib.rs",
            "core",
            r"
fn helper() {}
fn a() { helper(); }
fn b() { crate::helper(); }
",
        )]);
        let e = edges(&g);
        assert!(e.contains(&("core::a".into(), "core::helper".into())), "{e:?}");
        assert!(e.contains(&("core::b".into(), "core::helper".into())), "{e:?}");
    }

    #[test]
    fn cross_crate_paths_and_use_aliases_resolve() {
        let (_, g) = graph(&[
            (
                "crates/bench/src/helpers.rs",
                "bench",
                "pub fn stamp_micros() -> u64 { 0 }",
            ),
            (
                "crates/core/src/engine.rs",
                "core",
                r"
use siteselect_bench::helpers::stamp_micros;
fn direct() { siteselect_bench::helpers::stamp_micros(); }
fn via_use() { stamp_micros(); }
fn bare_crate_name() { helpers::stamp_micros(); }
",
            ),
        ]);
        let e = edges(&g);
        for caller in ["direct", "via_use", "bare_crate_name"] {
            assert!(
                e.contains(&(format!("core::{caller}"), "bench::stamp_micros".into())),
                "{caller}: {e:?}"
            );
        }
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl_type() {
        let (_, g) = graph(&[(
            "crates/cluster/src/server.rs",
            "cluster",
            r"
struct Server;
impl Server {
    fn acquire(&self) { self.issue_callbacks(); }
    fn issue_callbacks(&self) {}
}
struct Other;
impl Other {
    fn issue_callbacks(&self) {}
}
",
        )]);
        let e = edges(&g);
        assert_eq!(
            e,
            vec![(
                "cluster::Server::acquire".into(),
                "cluster::Server::issue_callbacks".into()
            )]
        );
    }

    #[test]
    fn std_method_names_never_resolve_by_uniqueness() {
        // `now` exists exactly once as a workspace method, but `.now(`
        // must stay unresolved — wall-clock `Instant::now` receivers
        // would otherwise alias the sim clock.
        let (_, g) = graph(&[
            (
                "crates/sim/src/clock.rs",
                "sim",
                "struct Clock; impl Clock { fn now(&self) -> u64 { 0 } }",
            ),
            (
                "crates/core/src/engine.rs",
                "core",
                "fn f(c: &Clock) { c.now(); }",
            ),
        ]);
        assert!(edges(&g).is_empty(), "{:?}", edges(&g));
        // A project-specific unique method name does resolve.
        let (_, g2) = graph(&[
            (
                "crates/sim/src/clock.rs",
                "sim",
                "struct Clock; impl Clock { fn advance_virtual(&self) {} }",
            ),
            (
                "crates/core/src/engine.rs",
                "core",
                "fn f(c: &Clock) { c.advance_virtual(); }",
            ),
        ]);
        let e = edges(&g2);
        assert_eq!(
            e,
            vec![("core::f".into(), "sim::Clock::advance_virtual".into())]
        );
    }

    #[test]
    fn type_assoc_calls_and_turbofish_resolve() {
        let (_, g) = graph(&[(
            "crates/core/src/q.rs",
            "core",
            r"
struct Queue;
impl Queue {
    fn with_hint(n: usize) -> Queue { Queue }
}
fn mk() { Queue::with_hint(4); }
fn turbo() { wrap::<u32>(1); }
fn wrap<T>(x: T) -> T { x }
",
        )]);
        let e = edges(&g);
        assert!(e.contains(&("core::mk".into(), "core::Queue::with_hint".into())), "{e:?}");
        assert!(e.contains(&("core::turbo".into(), "core::wrap".into())), "{e:?}");
    }

    #[test]
    fn std_paths_macros_and_attributes_are_not_edges() {
        let (_, g) = graph(&[(
            "crates/core/src/q.rs",
            "core",
            r#"
fn push() {}
fn f() {
    std::mem::drop(1);
    core::fmt::format(format_args!("x"));
    println!("not a call to push {}", 1);
    #[allow(dead_code)]
    let v: Vec<u32> = Vec::new();
    matches!(1, 1);
}
"#,
        )]);
        assert!(edges(&g).is_empty(), "{:?}", edges(&g));
    }

    #[test]
    fn nested_fn_calls_attribute_to_the_inner_fn() {
        let (_, g) = graph(&[(
            "crates/core/src/q.rs",
            "core",
            r"
fn target() {}
fn outer() {
    fn inner() { target(); }
    inner();
}
",
        )]);
        let e = edges(&g);
        assert!(e.contains(&("core::inner".into(), "core::target".into())), "{e:?}");
        assert!(e.contains(&("core::outer".into(), "core::inner".into())), "{e:?}");
        assert!(
            !e.contains(&("core::outer".into(), "core::target".into())),
            "outer must not absorb inner's calls: {e:?}"
        );
    }

    #[test]
    fn module_segments_filter_same_name_fns() {
        let (units, g) = graph(&[(
            "crates/core/src/lib.rs",
            "core",
            r"
mod wheel { pub fn push() {} }
mod heap { pub fn push() {} }
fn f() { crate::wheel::push(); }
",
        )]);
        let caller = g.fns.iter().position(|f| f.qualified == "core::f").unwrap();
        let calls = &g.calls[caller];
        assert_eq!(calls.len(), 1, "{:?}", edges(&g));
        let callee_def = g.def(&units, calls[0].callee);
        assert_eq!(callee_def.module, vec!["wheel"], "picked the wrong push");
    }
}
