//! Lock-order analysis for the threaded cluster runtime: D7 (lock
//! acquisition cycles) and D8 (guards held across channel sends or
//! thread joins).
//!
//! The pass tracks guards of the workspace's own [`Mutex`] wrapper
//! (`crates/cluster/src/sync.rs`) through each function body:
//!
//! * `let g = x.lock();` — the guard lives to the end of the enclosing
//!   block, or to an earlier `drop(g)`.
//! * `x.lock().method(…);` — a temporary, dropped at the end of the
//!   statement.
//! * `if let P = x.lock()… {` / `while let` / `match` / `for … in
//!   x.lock()… {` — the scrutinee temporary lives to the end of the
//!   construct's block (the Rust 2021 rule; conservative for 2024).
//!
//! Lock identity is the dotted receiver path with `self` replaced by
//! the impl type (`SharedServer.inner`); the wrapper's own internal
//! `self.0.lock()` is ignored. While any guard is held:
//!
//! * acquiring another lock — directly or transitively through a call
//!   (summaries reach fixpoint over the workspace call graph) — adds an
//!   ordering edge `held → acquired`; a cycle in the resulting graph is
//!   a D7 violation reported at the edge that closes it.
//! * a direct `.send(…)` or zero-argument `.join()` (thread-handle
//!   shape; one-argument `join` is the `str`/`Path` method), or a call
//!   to a function that transitively sends or joins, is a D8 violation:
//!   the send can block under backpressure and the join can wait on a
//!   thread that needs the held lock.
//!
//! Only units the workspace layer marks *active* (per `detlint.toml`,
//! the `cluster` crate) are scanned for lock sites and violations;
//! send/join facts are still seeded workspace-wide so a held guard
//! crossing a crate boundary into sending code is caught.

use crate::callgraph::{Call, CallGraph, Unit};
use crate::flow::statement_start;
use crate::lexer::Token;
use crate::rules::{allowed_by_line, RuleId, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// One acquired-while-held edge, with the site that created it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired (directly or via a call) while `from` was held.
    pub to: String,
    pub file: String,
    pub line: u32,
}

/// The acquired-while-held graph over named locks.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Deduplicated edges, first site wins, sorted by `(from, to)`.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// True if the graph contains an edge `from → to`.
    #[must_use]
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }
}

/// Per-function facts at fixpoint: locks acquired anywhere inside
/// (directly or transitively) and whether the function can send on a
/// channel or join a thread.
#[derive(Debug, Default, Clone)]
struct FnFacts {
    locks: BTreeSet<String>,
    sends: bool,
    joins: bool,
}

/// Runs the pass. `active[u]` marks units the D7/D8 policy applies to;
/// lock sites are only recognized there. Returns the lock graph and the
/// D7/D8 violations, sorted by `(file, line, rule)`.
#[must_use]
pub fn check(units: &[Unit], graph: &CallGraph, active: &[bool]) -> (LockGraph, Vec<Violation>) {
    let codes: Vec<Vec<&Token>> = units.iter().map(Unit::code).collect();
    let facts = fixpoint(units, graph, active, &codes);
    let allowed: Vec<BTreeMap<u32, BTreeSet<RuleId>>> = units
        .iter()
        .map(|u| allowed_by_line(&u.tokens))
        .collect();

    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut out = Vec::new();
    let mut seen_d8: BTreeSet<(usize, u32)> = BTreeSet::new();

    for (caller, node) in graph.fns.iter().enumerate() {
        if !active[node.unit] {
            continue;
        }
        let unit = &units[node.unit];
        let def = &unit.parsed.fns[node.def];
        if def.test_only {
            continue;
        }
        let Some((s, e)) = def.body else { continue };
        let code = &codes[node.unit];
        let calls_by_tok: BTreeMap<usize, &Call> =
            graph.calls[caller].iter().map(|c| (c.tok, c)).collect();
        // Active guards: (lock name, exclusive scope-end index).
        let mut held: Vec<(String, usize)> = Vec::new();
        for i in s..e.min(code.len()) {
            if unit.parsed.fn_containing(i).is_none_or(|f| !std::ptr::eq(f, def)) {
                continue; // nested fn bodies get their own walk
            }
            held.retain(|g| g.1 > i);
            let line = code[i].line;
            let d8_allowed = allowed[node.unit]
                .get(&line)
                .is_some_and(|rs| rs.contains(&RuleId::D8));
            if let Some(name) = lock_site(code, i, def.self_ty.as_deref()) {
                for (h, _) in &held {
                    edge_insert(&mut edges, h, &name, &unit.path, line);
                }
                let end = guard_scope_end(code, i, s, e);
                held.push((name, end));
                continue;
            }
            if !held.is_empty() {
                if let Some(what) = send_or_join_site(code, i) {
                    if !d8_allowed && seen_d8.insert((node.unit, line)) {
                        out.push(d8(unit, line, &format!(
                            "{what} while holding `{}` — the wait can block with the lock held; \
                             release the guard first or annotate why it cannot block",
                            held_names(&held),
                        )));
                    }
                    continue;
                }
                if let Some(call) = calls_by_tok.get(&i) {
                    let f = &facts[call.callee];
                    for to in &f.locks {
                        for (h, _) in &held {
                            if h != to {
                                edge_insert(&mut edges, h, to, &unit.path, line);
                            }
                        }
                    }
                    if (f.sends || f.joins) && !d8_allowed && seen_d8.insert((node.unit, line)) {
                        let what = if f.sends { "sends on a channel" } else { "joins a thread" };
                        out.push(d8(unit, line, &format!(
                            "call to `{}` {what} while holding `{}` — the wait can block with \
                             the lock held; release the guard first or annotate why it cannot block",
                            call.display,
                            held_names(&held),
                        )));
                    }
                }
            }
        }
    }

    let lock_graph = LockGraph {
        edges: edges
            .into_iter()
            .map(|((from, to), (file, line))| LockEdge { from, to, file, line })
            .collect(),
    };
    out.extend(cycles(&lock_graph, units, &allowed));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (lock_graph, out)
}

fn d8(unit: &Unit, line: u32, message: &str) -> Violation {
    Violation {
        file: unit.path.clone(),
        line,
        rule: RuleId::D8,
        message: message.to_string(),
    }
}

fn held_names(held: &[(String, usize)]) -> String {
    held.iter().map(|g| g.0.as_str()).collect::<Vec<_>>().join("`, `")
}

fn edge_insert(
    edges: &mut BTreeMap<(String, String), (String, u32)>,
    from: &str,
    to: &str,
    file: &str,
    line: u32,
) {
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert_with(|| (file.to_string(), line));
}

/// Seeds per-function facts and unions them along call edges until
/// stable.
fn fixpoint(
    units: &[Unit],
    graph: &CallGraph,
    active: &[bool],
    codes: &[Vec<&Token>],
) -> Vec<FnFacts> {
    let mut facts: Vec<FnFacts> = Vec::with_capacity(graph.fns.len());
    for node in &graph.fns {
        let unit = &units[node.unit];
        let def = &unit.parsed.fns[node.def];
        let mut f = FnFacts::default();
        if let Some((s, e)) = def.body {
            let code = &codes[node.unit];
            for i in s..e.min(code.len()) {
                if unit.parsed.fn_containing(i).is_none_or(|d| !std::ptr::eq(d, def)) {
                    continue;
                }
                if active[node.unit] {
                    if let Some(name) = lock_site(code, i, def.self_ty.as_deref()) {
                        f.locks.insert(name);
                        continue;
                    }
                }
                match send_or_join_site(code, i) {
                    Some(SiteKind::Send) => f.sends = true,
                    Some(SiteKind::Join) => f.joins = true,
                    None => {}
                }
            }
        }
        facts.push(f);
    }
    loop {
        let mut changed = false;
        for caller in 0..graph.fns.len() {
            for call in &graph.calls[caller] {
                let callee = facts[call.callee].clone();
                let f = &mut facts[caller];
                let before = f.locks.len();
                f.locks.extend(callee.locks);
                if f.locks.len() != before {
                    changed = true;
                }
                if callee.sends && !f.sends {
                    f.sends = true;
                    changed = true;
                }
                if callee.joins && !f.joins {
                    f.joins = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return facts;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Send,
    Join,
}

impl std::fmt::Display for SiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiteKind::Send => write!(f, "channel send"),
            SiteKind::Join => write!(f, "thread join"),
        }
    }
}

/// `.send(` at `i`, or a zero-argument `.join()` (the thread-handle
/// shape — `str::join`/`Path::join` take an argument).
fn send_or_join_site(code: &[&Token], i: usize) -> Option<SiteKind> {
    let name = code[i].ident()?;
    if i == 0 || !code[i - 1].is_punct('.') {
        return None;
    }
    if !code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    match name {
        "send" => Some(SiteKind::Send),
        "join" if code.get(i + 2).is_some_and(|t| t.is_punct(')')) => Some(SiteKind::Join),
        _ => None,
    }
}

/// Recognizes `<receiver>.lock()` at code index `i` (the `lock` ident)
/// and names the lock: the dotted receiver path with a leading `self`
/// replaced by the impl type. Returns `None` for the wrapper's own
/// `self.0.lock()` (a tuple-field receiver is the raw std mutex inside
/// `sync.rs`) and for computed receivers (`f(x).lock()`).
fn lock_site(code: &[&Token], i: usize, self_ty: Option<&str>) -> Option<String> {
    if code[i].ident() != Some("lock") {
        return None;
    }
    if i < 2 || !code[i - 1].is_punct('.') {
        return None;
    }
    if !code.get(i + 1).is_some_and(|t| t.is_punct('('))
        || !code.get(i + 2).is_some_and(|t| t.is_punct(')'))
    {
        return None;
    }
    // Walk the dotted path backwards: ident (. ident)*
    let mut segs: Vec<&str> = Vec::new();
    let mut j = i - 1; // at the '.'
    while let Some(prev) = j.checked_sub(1) {
        let Some(id) = code[prev].ident() else {
            // `self.0.lock()` (a wrapper's internal mutex) or a computed
            // receiver — can't name the lock.
            return None;
        };
        segs.push(id);
        if prev >= 2 && code[prev - 1].is_punct('.') {
            j = prev - 1;
        } else {
            break;
        }
    }
    segs.reverse();
    if segs.is_empty() {
        return None;
    }
    if segs[0] == "self" {
        segs[0] = self_ty.unwrap_or("Self");
    }
    Some(segs.join("."))
}

/// Exclusive scope end for the guard produced by the `.lock()` at `i`.
fn guard_scope_end(code: &[&Token], i: usize, body_s: usize, body_e: usize) -> usize {
    let body_e = body_e.min(code.len());
    let stmt_s = statement_start(code, i, body_s);
    match code[stmt_s].ident() {
        Some("let") => {
            let bind = binding_name(code, stmt_s);
            let end = enclosing_block_end(code, i, body_e);
            if let Some(name) = bind {
                if let Some(d) = drop_site(code, i, end, name) {
                    return d;
                }
            }
            end
        }
        Some("if" | "while" | "match" | "for") => construct_block_end(code, i, body_e),
        _ => temporary_end(code, i, body_e),
    }
}

/// The pattern ident of `let [mut] NAME = …`, if it is a simple one.
fn binding_name<'t>(code: &[&'t Token], stmt_s: usize) -> Option<&'t str> {
    let mut k = stmt_s + 1;
    if code.get(k).and_then(|t| t.ident()) == Some("mut") {
        k += 1;
    }
    code.get(k).and_then(|t| t.ident())
}

/// First `drop(NAME)` between `i` and `end`, as the release point.
fn drop_site(code: &[&Token], i: usize, end: usize, name: &str) -> Option<usize> {
    (i..end.min(code.len()).saturating_sub(3)).find(|&k| {
        code[k].ident() == Some("drop")
            && code[k + 1].is_punct('(')
            && code[k + 2].ident() == Some(name)
            && code[k + 3].is_punct(')')
    })
}

/// The `}` closing the innermost block containing `i` (exclusive end).
fn enclosing_block_end(code: &[&Token], i: usize, body_e: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().take(body_e).skip(i) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return k;
            }
            depth -= 1;
        }
    }
    body_e
}

/// For `if let` / `while let` / `match` / `for` scrutinee temporaries:
/// the end of the construct's block — the `}` matching the first `{`
/// at group depth 0 after the site.
fn construct_block_end(code: &[&Token], i: usize, body_e: usize) -> usize {
    let mut gdepth = 0i32;
    let mut k = i;
    while k < body_e {
        let t = code[k];
        if t.is_punct('(') || t.is_punct('[') {
            gdepth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            gdepth -= 1;
        } else if t.is_punct('{') && gdepth == 0 {
            // Match this brace.
            let mut depth = 0i32;
            for (m, u) in code.iter().enumerate().take(body_e).skip(k + 1) {
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    if depth == 0 {
                        return m;
                    }
                    depth -= 1;
                }
            }
            return body_e;
        }
        k += 1;
    }
    body_e
}

/// A plain-statement temporary: dropped at the `;` ending the statement
/// (or at the close of the surrounding block for a tail expression).
fn temporary_end(code: &[&Token], i: usize, body_e: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().take(body_e).skip(i) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return k; // tail expression: block close drops it
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return k;
        }
    }
    body_e
}

/// DFS cycle detection over the lock graph; one D7 violation per
/// distinct cycle, reported at the edge completing it.
fn cycles(
    graph: &LockGraph,
    units: &[Unit],
    allowed: &[BTreeMap<u32, BTreeSet<RuleId>>],
) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &graph.edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    // Color-marked DFS from every node, deterministic order.
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&LockEdge> = Vec::new();
        let mut on_path: BTreeSet<&str> = [start].into_iter().collect();
        while let Some((node, next)) = stack.last_mut() {
            let succ = adj.get(node).map_or(&[][..], Vec::as_slice);
            if *next >= succ.len() {
                stack.pop();
                if let Some(e) = path.pop() {
                    on_path.remove(e.to.as_str());
                }
                continue;
            }
            let e = succ[*next];
            *next += 1;
            if e.to == start {
                // Cycle closed. Normalize by rotating to the smallest
                // lock name so each cycle reports once.
                let mut names: Vec<String> =
                    path.iter().map(|p| p.from.clone()).collect();
                names.push(e.from.clone());
                let min = names.iter().enumerate().min_by_key(|(_, n)| *n).map_or(0, |(i, _)| i);
                names.rotate_left(min);
                if reported.insert(names.clone()) {
                    let site = path.iter().chain([&e]).max_by_key(|p| (&p.file, p.line));
                    let site = site.expect("cycle has at least one edge");
                    let unit_idx = units.iter().position(|u| u.path == site.file);
                    let suppressed = unit_idx.is_some_and(|u| {
                        allowed[u]
                            .get(&site.line)
                            .is_some_and(|rs| rs.contains(&RuleId::D7))
                    });
                    if !suppressed {
                        let mut display = names.clone();
                        display.push(display[0].clone());
                        out.push(Violation {
                            file: site.file.clone(),
                            line: site.line,
                            rule: RuleId::D7,
                            message: format!(
                                "lock order cycle: `{}` — two threads taking these locks in \
                                 different orders can deadlock; pick one global order",
                                display.join("` → `"),
                            ),
                        });
                    }
                }
            } else if !on_path.contains(e.to.as_str()) {
                on_path.insert(&e.to);
                path.push(e);
                stack.push((&e.to, 0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (LockGraph, Vec<Violation>) {
        let units = vec![Unit::new(
            "crates/cluster/src/x.rs".into(),
            "cluster".into(),
            src,
        )];
        let graph = CallGraph::build(&units);
        check(&units, &graph, &[true])
    }

    #[test]
    fn nested_let_guards_create_an_edge() {
        let (g, v) = run(
            r"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
",
        );
        assert!(g.has_edge("S.a", "S.b"), "{:?}", g.edges);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let (g, v) = run(
            r"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
    fn g(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
    }
}
",
        );
        assert!(g.has_edge("S.a", "S.b") && g.has_edge("S.b", "S.a"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::D7);
        assert!(v[0].message.contains("S.a"), "{}", v[0].message);
    }

    #[test]
    fn temporaries_expire_at_statement_end() {
        let (g, v) = run(
            r"
struct S { a: Mutex<Vec<u32>>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        self.a.lock().push(1);
        let gb = self.b.lock();
    }
}
",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
        assert!(v.is_empty());
    }

    #[test]
    fn drop_releases_the_guard_early() {
        let (g, _) = run(
            r"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
    }
}
",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn send_under_if_let_scrutinee_guard_is_d8() {
        let (_, v) = run(
            r"
struct S { tx: Mutex<Vec<Option<Sender<u32>>>> }
impl S {
    fn f(&self, i: usize) {
        if let Some(tx) = self.tx.lock()[i].as_ref() {
            let _ = tx.send(7);
        }
    }
}
",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::D8);
        assert_eq!(v[0].line, 6);
        assert!(v[0].message.contains("S.tx"), "{}", v[0].message);
    }

    #[test]
    fn send_after_the_if_let_block_is_fine() {
        let (_, v) = run(
            r"
struct S { tx: Mutex<Option<Sender<u32>>> }
impl S {
    fn f(&self, out: &Sender<u32>) {
        if let Some(_tx) = self.tx.lock().as_ref() {
        }
        let _ = out.send(7);
    }
}
",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn transitive_send_through_a_call_is_d8_at_the_call_site() {
        let (_, v) = run(
            r"
struct S { m: Mutex<u32> }
impl S {
    fn notify(&self, tx: &Sender<u32>) {
        let _ = tx.send(1);
    }
    fn f(&self, tx: &Sender<u32>) {
        let g = self.m.lock();
        self.notify(tx);
    }
}
",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::D8);
        assert!(v[0].message.contains("notify"), "{}", v[0].message);
    }

    #[test]
    fn transitive_lock_through_a_call_creates_an_edge() {
        let (g, _) = run(
            r"
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn take_b(&self) -> u32 {
        *self.b.lock()
    }
    fn f(&self) {
        let ga = self.a.lock();
        let _ = self.take_b();
    }
}
",
        );
        assert!(g.has_edge("S.a", "S.b"), "{:?}", g.edges);
    }

    #[test]
    fn str_join_with_argument_is_not_a_thread_join() {
        let (_, v) = run(
            r#"
struct S { m: Mutex<u32> }
impl S {
    fn f(&self, parts: &[String]) -> String {
        let g = self.m.lock();
        parts.join(", ")
    }
}
"#,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn zero_arg_join_under_guard_is_d8() {
        let (_, v) = run(
            r"
struct S { m: Mutex<u32> }
impl S {
    fn f(&self, h: JoinHandle<()>) {
        let g = self.m.lock();
        let _ = h.join();
    }
}
",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::D8);
    }

    #[test]
    fn wrapper_internal_numeric_receiver_is_skipped() {
        let (g, v) = run(
            r"
pub struct Mutex<T>(std::sync::Mutex<T>);
impl<T> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<T> {
        MutexGuard(Some(self.0.lock().unwrap()))
    }
}
",
        );
        assert!(g.edges.is_empty() && v.is_empty());
    }

    #[test]
    fn annotations_suppress_d8() {
        let (_, v) = run(
            r"
struct S { m: Mutex<u32> }
impl S {
    fn f(&self, tx: &Sender<u32>) {
        let g = self.m.lock();
        // detlint: allow(D8) — unbounded channel, send never blocks
        let _ = tx.send(1);
    }
}
",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_only_fns_are_skipped() {
        let (g, v) = run(
            r"
struct S { a: Mutex<u32>, b: Mutex<u32> }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let ga = S.a.lock();
        let gb = S.b.lock();
    }
}
",
        );
        assert!(g.edges.is_empty() && v.is_empty());
    }
}
