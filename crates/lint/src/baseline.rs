//! The finding baseline (`detlint.baseline.json`) — a ratchet for
//! rules with a pre-existing surface that is too large to burn down in
//! one change (today only D9, the panic audit; see
//! [`crate::rules::RuleMeta::baselined`]).
//!
//! The file records, per source file and rule, how many findings are
//! *accepted*. Checking then works like a ratchet:
//!
//! * count == baseline — all findings for that `(file, rule)` are
//!   absorbed silently;
//! * count  > baseline — **every** finding for the pair is reported
//!   (the new site is indistinguishable from the old ones, and the
//!   fix is either removing a site or deliberately regenerating);
//! * count  < baseline — the entry is *stale*: someone fixed sites
//!   without shrinking the baseline. `--ratchet` (CI) fails on stale
//!   entries so the accepted surface only ever shrinks.
//!
//! `detlint baseline` regenerates the file from the current findings;
//! the render is deterministic (sorted, fixed layout) so diffs are
//! reviewable.

use crate::json::{self, Value};
use crate::rules::{RuleId, Violation};
use std::collections::BTreeMap;

/// Accepted finding counts per `(file, rule)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// `file → rule → accepted count`, both levels sorted.
    pub counts: BTreeMap<String, BTreeMap<RuleId, usize>>,
}

/// A baseline entry whose accepted count no longer matches reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    pub file: String,
    pub rule: RuleId,
    /// Accepted count in the baseline file.
    pub accepted: usize,
    /// Findings actually present now (strictly fewer).
    pub actual: usize,
}

/// Result of filtering findings through a baseline.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings that survive (non-baselined rules, and over-budget
    /// `(file, rule)` groups in full).
    pub kept: Vec<Violation>,
    /// Findings absorbed by the baseline.
    pub absorbed: usize,
    /// Entries where the surface shrank without a baseline update.
    pub stale: Vec<StaleEntry>,
}

impl Baseline {
    /// Builds the baseline that would absorb exactly `violations`
    /// (only rules marked baselined are recorded).
    #[must_use]
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<RuleId, usize>> = BTreeMap::new();
        for v in violations {
            if v.rule.meta().baselined {
                *counts.entry(v.file.clone()).or_default().entry(v.rule).or_default() += 1;
            }
        }
        Baseline { counts }
    }

    /// Parses the committed baseline file.
    ///
    /// # Errors
    ///
    /// A message describing the malformed construct.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        if doc.get("version").and_then(Value::as_usize) != Some(1) {
            return Err("baseline: expected `\"version\": 1`".into());
        }
        let files = doc
            .get("counts")
            .and_then(Value::as_obj)
            .ok_or("baseline: missing `counts` object")?;
        let mut counts: BTreeMap<String, BTreeMap<RuleId, usize>> = BTreeMap::new();
        for (file, rules) in files {
            let rules = rules
                .as_obj()
                .ok_or_else(|| format!("baseline: `{file}` is not an object"))?;
            let mut per: BTreeMap<RuleId, usize> = BTreeMap::new();
            for (rule, n) in rules {
                let id = RuleId::parse(rule)
                    .ok_or_else(|| format!("baseline: unknown rule `{rule}`"))?;
                if !id.meta().baselined {
                    return Err(format!("baseline: rule `{rule}` is not baselineable"));
                }
                let n = n
                    .as_usize()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("baseline: `{file}`/`{rule}` needs a positive count"))?;
                per.insert(id, n);
            }
            if !per.is_empty() {
                counts.insert(file.clone(), per);
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline deterministically (the inverse of
    /// [`parse`](Self::parse); byte-stable for identical contents).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"counts\": {");
        let mut first_file = true;
        for (file, rules) in &self.counts {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str("\n    ");
            out.push_str(&json::quote(file));
            out.push_str(": {");
            let mut first_rule = true;
            for (rule, n) in rules {
                if !first_rule {
                    out.push_str(", ");
                }
                first_rule = false;
                out.push_str(&format!("{}: {n}", json::quote(rule.id())));
            }
            out.push('}');
        }
        if !self.counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Filters `violations` through the baseline per the ratchet rules.
    #[must_use]
    pub fn apply(&self, violations: Vec<Violation>) -> Outcome {
        let mut actual: BTreeMap<(String, RuleId), usize> = BTreeMap::new();
        for v in &violations {
            if v.rule.meta().baselined {
                *actual.entry((v.file.clone(), v.rule)).or_default() += 1;
            }
        }
        let mut out = Outcome::default();
        for v in violations {
            if !v.rule.meta().baselined {
                out.kept.push(v);
                continue;
            }
            let accepted = self
                .counts
                .get(&v.file)
                .and_then(|m| m.get(&v.rule))
                .copied()
                .unwrap_or(0);
            let have = actual[&(v.file.clone(), v.rule)];
            if have <= accepted {
                out.absorbed += 1;
            } else {
                out.kept.push(v);
            }
        }
        for (file, rules) in &self.counts {
            for (&rule, &accepted) in rules {
                let have = actual.get(&(file.clone(), rule)).copied().unwrap_or(0);
                if have < accepted {
                    out.stale.push(StaleEntry {
                        file: file.clone(),
                        rule,
                        accepted,
                        actual: have,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: u32, rule: RuleId) -> Violation {
        Violation {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn render_parse_round_trip_is_identity() {
        let b = Baseline::from_violations(&[
            v("b.rs", 1, RuleId::D9),
            v("a.rs", 2, RuleId::D9),
            v("a.rs", 9, RuleId::D9),
        ]);
        let text = b.render();
        let b2 = Baseline::parse(&text).unwrap();
        assert_eq!(b, b2);
        assert_eq!(text, b2.render(), "render must be byte-stable");
    }

    #[test]
    fn exact_match_absorbs_everything() {
        let vs = vec![v("a.rs", 1, RuleId::D9), v("a.rs", 2, RuleId::D9)];
        let b = Baseline::from_violations(&vs);
        let out = b.apply(vs);
        assert!(out.kept.is_empty());
        assert_eq!(out.absorbed, 2);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn over_budget_reports_the_whole_group() {
        let b = Baseline::from_violations(&[v("a.rs", 1, RuleId::D9)]);
        let vs = vec![v("a.rs", 1, RuleId::D9), v("a.rs", 7, RuleId::D9)];
        let out = b.apply(vs);
        assert_eq!(out.kept.len(), 2, "both sites reported when one is new");
        assert_eq!(out.absorbed, 0);
    }

    #[test]
    fn shrinkage_is_stale() {
        let b = Baseline::from_violations(&[v("a.rs", 1, RuleId::D9), v("a.rs", 2, RuleId::D9)]);
        let out = b.apply(vec![v("a.rs", 1, RuleId::D9)]);
        assert_eq!(out.absorbed, 1);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].accepted, 2);
        assert_eq!(out.stale[0].actual, 1);
    }

    #[test]
    fn non_baselined_rules_pass_through() {
        let b = Baseline::default();
        let out = b.apply(vec![v("a.rs", 1, RuleId::D1)]);
        assert_eq!(out.kept.len(), 1);
    }

    #[test]
    fn parse_rejects_non_baselineable_rules_and_bad_counts() {
        assert!(Baseline::parse(r#"{"version": 1, "counts": {"a.rs": {"D1": 1}}}"#).is_err());
        assert!(Baseline::parse(r#"{"version": 1, "counts": {"a.rs": {"D9": 0}}}"#).is_err());
        assert!(Baseline::parse(r#"{"version": 2, "counts": {}}"#).is_err());
    }
}
