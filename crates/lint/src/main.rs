//! `detlint` — CLI for the determinism & safety analyzer.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/io error.

use siteselect_lint::{check_paths, check_workspace, load_config, RuleId};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — determinism & safety analyzer for the siteselect workspace

USAGE:
    detlint check --workspace [--root <dir>]
    detlint check [--root <dir>] <file.rs>...
    detlint rules

Violations print as `file:line: detlint[Dn]: message`. Deliberate ones
are suppressed in place with `// detlint: allow(Dn) — <reason>` on the
offending line or the line above; the reason is mandatory. Per-module
allowlists live in detlint.toml at the workspace root.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("detlint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    match args.first().map(String::as_str) {
        Some("rules") => {
            print_rules();
            Ok(true)
        }
        Some("check") => check(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn print_rules() {
    println!("{:<4} {:<20} summary", "id", "name");
    for rule in RuleId::ALL {
        println!("{:<4} {:<20} {}", rule.id(), rule.name(), rule.summary());
    }
}

fn check(args: &[String]) -> Result<bool, String> {
    let mut root = default_root();
    let mut whole_workspace = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => whole_workspace = true,
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n\n{USAGE}"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !whole_workspace && files.is_empty() {
        return Err(format!("nothing to check\n\n{USAGE}"));
    }
    let cfg = load_config(&root)?;
    let report = if whole_workspace {
        check_workspace(&root, &cfg).map_err(|e| e.to_string())?
    } else {
        check_paths(&root, &files, &cfg).map_err(|e| e.to_string())?
    };
    for v in &report.violations {
        println!("{v}");
    }
    if report.is_clean() {
        println!(
            "detlint: clean ({} files, {} suppression{})",
            report.files_checked,
            report.suppressions,
            if report.suppressions == 1 { "" } else { "s" }
        );
        Ok(true)
    } else {
        println!(
            "detlint: {} violation{} in {} files",
            report.violations.len(),
            if report.violations.len() == 1 { "" } else { "s" },
            report.files_checked
        );
        Ok(false)
    }
}

/// The workspace root: walk up from the current directory to the first
/// one containing `detlint.toml` (so the tool works from any subdir),
/// falling back to the current directory.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
