//! `detlint` — CLI for the determinism & safety analyzer.
//!
//! Exit codes: 0 clean, 1 violations found (or, with `--ratchet`, a
//! stale baseline), 2 usage/config/io error.

use siteselect_lint::baseline::Baseline;
use siteselect_lint::workspace::load_baseline;
use siteselect_lint::{check_paths, check_workspace, load_config, Report, RuleId};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — determinism & safety analyzer for the siteselect workspace

USAGE:
    detlint check --workspace [--json] [--ratchet] [--no-baseline] [--root <dir>]
    detlint check [--root <dir>] <file.rs>...
    detlint baseline [--root <dir>]
    detlint rules [--toml]

`check --workspace` runs every pass: the per-file token rules, the
interprocedural D1/D3 dataflow, the D7/D8 lock-order analysis, and the
D9 panic audit. Targeted `check <file>` runs the per-file passes only.
`baseline` regenerates detlint.baseline.json, the ratchet that absorbs
the accepted D9 surface; `--ratchet` additionally fails when that file
is stale (counts shrank without regenerating). `--json` prints the
report as deterministic JSON on stdout.

Violations print as `file:line: detlint[Dn]: message`. Deliberate ones
are suppressed in place with `// detlint: allow(Dn) — <reason>` on the
offending line or the line above; the reason is mandatory. Per-module
allowlists live in detlint.toml at the workspace root.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("detlint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    match args.first().map(String::as_str) {
        Some("rules") => {
            if args.get(1).map(String::as_str) == Some("--toml") {
                print!("{}", siteselect_lint::rules::toml_rule_table());
            } else {
                print_rules();
            }
            Ok(true)
        }
        Some("check") => check(&args[1..]),
        Some("baseline") => regenerate_baseline(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn print_rules() {
    println!("{:<4} {:<20} summary", "id", "name");
    for rule in RuleId::ALL {
        println!(
            "{:<4} {:<20} {}{}",
            rule.id(),
            rule.name(),
            rule.summary(),
            if rule.meta().baselined { " [baselined]" } else { "" },
        );
    }
}

fn check(args: &[String]) -> Result<bool, String> {
    let mut root = default_root();
    let mut whole_workspace = false;
    let mut json = false;
    let mut ratchet = false;
    let mut use_baseline = true;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => whole_workspace = true,
            "--json" => json = true,
            "--ratchet" => ratchet = true,
            "--no-baseline" => use_baseline = false,
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n\n{USAGE}"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !whole_workspace && files.is_empty() {
        return Err(format!("nothing to check\n\n{USAGE}"));
    }
    let cfg = load_config(&root)?;
    let baseline = if use_baseline { load_baseline(&root)? } else { None };
    let report = if whole_workspace {
        check_workspace(&root, &cfg, baseline.as_ref()).map_err(|e| e.to_string())?
    } else {
        check_paths(&root, &files, &cfg, baseline.as_ref()).map_err(|e| e.to_string())?
    };
    let stale_fails = ratchet && !report.stale.is_empty();
    if json {
        print!("{}", render_json(&report));
        return Ok(report.is_clean() && !stale_fails);
    }
    for v in &report.violations {
        println!("{v}");
    }
    for s in &report.stale {
        println!(
            "detlint: stale baseline: {} {} accepts {} finding{} but {} remain{} — run `detlint baseline`",
            s.file,
            s.rule.id(),
            s.accepted,
            if s.accepted == 1 { "" } else { "s" },
            s.actual,
            if s.actual == 1 { "s" } else { "" },
        );
    }
    if report.is_clean() && !stale_fails {
        let absorbed = if report.absorbed > 0 {
            format!(", {} baselined", report.absorbed)
        } else {
            String::new()
        };
        println!(
            "detlint: clean ({} files, {} suppression{}{absorbed})",
            report.files_checked,
            report.suppressions,
            if report.suppressions == 1 { "" } else { "s" }
        );
        Ok(true)
    } else {
        if !report.violations.is_empty() {
            println!(
                "detlint: {} violation{} in {} files",
                report.violations.len(),
                if report.violations.len() == 1 { "" } else { "s" },
                report.files_checked
            );
        }
        Ok(false)
    }
}

/// Deterministic JSON rendering of a report: same findings, same bytes.
fn render_json(report: &Report) -> String {
    use siteselect_lint::json::quote;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files\": {},\n", report.files_checked));
    out.push_str(&format!("  \"suppressions\": {},\n", report.suppressions));
    out.push_str(&format!("  \"absorbed\": {},\n", report.absorbed));
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            quote(&v.file),
            v.line,
            quote(v.rule.id()),
            quote(&v.message),
        ));
    }
    if report.violations.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"stale\": [");
    for (i, s) in report.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"rule\": {}, \"accepted\": {}, \"actual\": {}}}",
            quote(&s.file),
            quote(s.rule.id()),
            s.accepted,
            s.actual,
        ));
    }
    if report.stale.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// `detlint baseline`: regenerate `detlint.baseline.json` from the
/// current findings so the accepted surface matches reality exactly.
fn regenerate_baseline(args: &[String]) -> Result<bool, String> {
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                );
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    let cfg = load_config(&root)?;
    let report = check_workspace(&root, &cfg, None).map_err(|e| e.to_string())?;
    let baseline = Baseline::from_violations(&report.violations);
    let entries: usize = baseline.counts.values().map(|m| m.values().sum::<usize>()).sum();
    let path = root.join("detlint.baseline.json");
    std::fs::write(&path, baseline.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "detlint: baseline written to {} ({} accepted finding{} in {} file{})",
        path.display(),
        entries,
        if entries == 1 { "" } else { "s" },
        baseline.counts.len(),
        if baseline.counts.len() == 1 { "" } else { "s" },
    );
    // Non-baselined findings still fail the run so `baseline` cannot
    // be used to paper over real violations.
    let hard: Vec<_> = report
        .violations
        .iter()
        .filter(|v| !v.rule.meta().baselined)
        .collect();
    for v in &hard {
        println!("{v}");
    }
    Ok(hard.is_empty())
}

/// The workspace root: walk up from the current directory to the first
/// one containing `detlint.toml` (so the tool works from any subdir),
/// falling back to the current directory.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
