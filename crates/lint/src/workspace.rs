//! Workspace traversal: file discovery, crate grouping, the two-pass
//! D2 symbol collection, and the top-level [`check_workspace`] entry
//! point the CLI and tests share.

use crate::config::Config;
use crate::lexer::lex;
use crate::rules::{
    check_file, collect_symbols, CrateSymbols, FileContext, RuleId, Violation,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_checked: usize,
    pub suppressions: u32,
}

impl Report {
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The crate a workspace-relative path belongs to for symbol-table
/// purposes: `crates/<name>/…` → `<name>`, everything else (`src/`,
/// `tests/`, `examples/`) → `root`.
#[must_use]
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// A file is "library code" for D6 when it compiles into a `lib` target:
/// under some `src/` but not `src/bin/`, not `main.rs`, and not under
/// `tests/`, `examples/` or `benches/`.
#[must_use]
pub fn is_library_path(path: &str) -> bool {
    let in_src = path.starts_with("src/") || path.contains("/src/");
    in_src
        && !path.contains("/bin/")
        && !path.ends_with("/main.rs")
        && !path.starts_with("tests/")
        && !path.starts_with("examples/")
        && !path.contains("/tests/")
        && !path.contains("/examples/")
        && !path.contains("/benches/")
}

/// Recursively lists `.rs` files under `root`, skipping excluded paths.
/// Returned paths are workspace-relative with `/` separators, sorted so
/// diagnostics come out in a stable order on every platform.
pub fn discover_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = relative(&path, root);
            if cfg.is_excluded(&rel) || rel.starts_with('.') {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to `/` so configs match on every platform.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints the given workspace-relative files (two passes: symbols, then
/// rules). `check --workspace` passes every discovered file; targeted
/// invocations still get crate-wide D2 resolution for the files given.
pub fn check_paths(
    root: &Path,
    files: &[String],
    cfg: &Config,
) -> std::io::Result<Report> {
    // Pass 1: per-crate symbol tables for D2.
    let mut crates: BTreeMap<String, CrateSymbols> = BTreeMap::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for rel in files {
        let src = fs::read_to_string(root.join(rel))?;
        let table = collect_symbols(&lex(&src));
        crates
            .entry(crate_of(rel))
            .or_default()
            .per_file
            .insert(rel.clone(), table);
        sources.insert(rel.clone(), src);
    }
    let crate_maps: BTreeMap<String, BTreeSet<String>> = crates
        .iter()
        .map(|(name, syms)| (name.clone(), syms.crate_wide_map_names()))
        .collect();

    // Pass 2: rules.
    let empty = BTreeSet::new();
    let mut report = Report::default();
    for rel in files {
        let src = &sources[rel];
        let ctx = FileContext {
            path: rel,
            allow_wall_clock: cfg.is_allowed(RuleId::D1, rel),
            allow_rng: cfg.is_allowed(RuleId::D3, rel),
            deterministic: cfg.is_deterministic_path(rel)
                && !cfg.is_allowed(RuleId::D2, rel),
            library: is_library_path(rel),
            allow_print: cfg.is_allowed(RuleId::D6, rel),
            crate_map_names: crate_maps.get(&crate_of(rel)).unwrap_or(&empty),
        };
        let file_report = check_file(src, &ctx);
        report.files_checked += 1;
        report.suppressions += file_report.suppressions;
        report.violations.extend(file_report.violations);
    }
    Ok(report)
}

/// Discovers and lints every `.rs` file under `root`.
pub fn check_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let files = discover_files(root, cfg)?;
    check_paths(root, &files, cfg)
}

/// Loads `detlint.toml` from `root`, falling back to defaults when the
/// file does not exist.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path: PathBuf = root.join("detlint.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_grouping() {
        assert_eq!(crate_of("crates/sim/src/rng.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/property_tests.rs"), "root");
    }

    #[test]
    fn library_classification() {
        assert!(is_library_path("crates/sim/src/rng.rs"));
        assert!(is_library_path("src/lib.rs"));
        assert!(!is_library_path("crates/bench/src/bin/repro.rs"));
        assert!(!is_library_path("crates/lint/src/main.rs"));
        assert!(!is_library_path("tests/property_tests.rs"));
        assert!(!is_library_path("examples/quickstart.rs"));
        assert!(!is_library_path("crates/bench/benches/cluster.rs"));
    }
}
