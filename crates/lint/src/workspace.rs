//! Workspace traversal and pass orchestration: file discovery, crate
//! grouping, the two-pass D2 symbol collection, the whole-workspace
//! passes (interprocedural dataflow, lock order, panic audit), baseline
//! application, and the top-level [`check_workspace`] entry point the
//! CLI and tests share.
//!
//! Targeted runs (`detlint check <files>`) execute the per-file passes
//! only — the call-graph passes need the whole workspace to resolve
//! calls and are meaningless on a subset. `check --workspace` runs
//! everything.

use crate::baseline::{Baseline, StaleEntry};
use crate::callgraph::{CallGraph, Unit};
use crate::config::Config;
use crate::dataflow::{self, UnitPolicy};
use crate::lexer::lex;
use crate::locks;
use crate::rules::{
    check_file, collect_symbols, CrateSymbols, FileContext, RuleId, Violation,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_checked: usize,
    pub suppressions: u32,
    /// Findings absorbed by `detlint.baseline.json`.
    pub absorbed: usize,
    /// Baseline entries whose accepted count exceeds reality (the
    /// surface shrank; `--ratchet` fails until the file is regenerated).
    pub stale: Vec<StaleEntry>,
}

impl Report {
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The crate a workspace-relative path belongs to for symbol-table
/// purposes: `crates/<name>/…` → `<name>`, everything else (`src/`,
/// `tests/`, `examples/`) → `root`.
#[must_use]
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// A file is "library code" for D6 when it compiles into a `lib` target:
/// under some `src/` but not `src/bin/`, not `main.rs`, and not under
/// `tests/`, `examples/` or `benches/`.
#[must_use]
pub fn is_library_path(path: &str) -> bool {
    let in_src = path.starts_with("src/") || path.contains("/src/");
    in_src
        && !path.contains("/bin/")
        && !path.ends_with("/main.rs")
        && !path.starts_with("tests/")
        && !path.starts_with("examples/")
        && !path.contains("/tests/")
        && !path.contains("/examples/")
        && !path.contains("/benches/")
}

/// Recursively lists `.rs` files under `root`, skipping excluded paths.
/// Returned paths are workspace-relative with `/` separators, sorted so
/// diagnostics come out in a stable order on every platform.
pub fn discover_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = relative(&path, root);
            if cfg.is_excluded(&rel) || rel.starts_with('.') {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to `/` so configs match on every platform.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Reads and parses the given workspace-relative files into call-graph
/// [`Unit`]s (each carries its token stream and parsed item tree).
pub fn build_units(root: &Path, files: &[String]) -> std::io::Result<Vec<Unit>> {
    files
        .iter()
        .map(|rel| {
            let src = fs::read_to_string(root.join(rel))?;
            Ok(Unit::new(rel.clone(), crate_of(rel), &src))
        })
        .collect()
}

/// The per-file passes over pre-built units: token rules and, for files
/// the D9 scope covers, the panic audit. Fills `files_checked`,
/// `suppressions` and the raw violation list (no baseline applied).
fn per_file_passes(root: &Path, units: &[Unit], cfg: &Config) -> std::io::Result<Report> {
    // Pass 1: per-crate symbol tables for D2.
    let mut crates: BTreeMap<String, CrateSymbols> = BTreeMap::new();
    let mut sources: BTreeMap<&str, String> = BTreeMap::new();
    for unit in units {
        let src = fs::read_to_string(root.join(&unit.path))?;
        let table = collect_symbols(&lex(&src));
        crates
            .entry(unit.crate_name.clone())
            .or_default()
            .per_file
            .insert(unit.path.clone(), table);
        sources.insert(&unit.path, src);
    }
    let crate_maps: BTreeMap<String, BTreeSet<String>> = crates
        .iter()
        .map(|(name, syms)| (name.clone(), syms.crate_wide_map_names()))
        .collect();

    // Pass 2: rules.
    let empty = BTreeSet::new();
    let mut report = Report::default();
    for unit in units {
        let rel = &unit.path;
        let ctx = FileContext {
            path: rel,
            allow_wall_clock: cfg.is_allowed(RuleId::D1, rel),
            allow_rng: cfg.is_allowed(RuleId::D3, rel),
            deterministic: cfg.is_deterministic_path(rel)
                && !cfg.is_allowed(RuleId::D2, rel),
            library: is_library_path(rel),
            allow_print: cfg.is_allowed(RuleId::D6, rel),
            crate_map_names: crate_maps.get(&unit.crate_name).unwrap_or(&empty),
        };
        let file_report = check_file(&sources[rel.as_str()], &ctx);
        report.files_checked += 1;
        report.suppressions += file_report.suppressions;
        report.violations.extend(file_report.violations);
        // The panic audit covers engine *library* code: integration
        // tests, benches and examples may panic freely.
        if cfg.rule_applies_to(RuleId::D9, rel)
            && is_library_path(rel)
            && !cfg.is_allowed(RuleId::D9, rel)
        {
            report.violations.extend(crate::panic::check_unit(unit));
        }
    }
    Ok(report)
}

/// The whole-workspace passes over pre-built units: interprocedural
/// D1/D3 dataflow and the D7/D8 lock-order analysis. Exposed so tests
/// can run them against the real repository.
#[must_use]
pub fn graph_passes(units: &[Unit], cfg: &Config) -> Vec<Violation> {
    let graph = CallGraph::build(units);
    let policies: Vec<UnitPolicy> = units
        .iter()
        .map(|u| UnitPolicy {
            allow_wall_clock: cfg.is_allowed(RuleId::D1, &u.path),
            allow_rng: cfg.is_allowed(RuleId::D3, &u.path),
        })
        .collect();
    let mut out = dataflow::check(units, &graph, &policies);
    let active: Vec<bool> = units
        .iter()
        .map(|u| {
            cfg.rule_applies_to(RuleId::D7, &u.path) || cfg.rule_applies_to(RuleId::D8, &u.path)
        })
        .collect();
    let (_, lock_violations) = locks::check(units, &graph, &active);
    out.extend(
        lock_violations
            .into_iter()
            .filter(|v| cfg.rule_applies_to(v.rule, &v.file)),
    );
    out
}

/// Applies the committed baseline (when given), then sorts.
fn finish(mut report: Report, baseline: Option<&Baseline>) -> Report {
    if let Some(b) = baseline {
        let outcome = b.apply(std::mem::take(&mut report.violations));
        report.violations = outcome.kept;
        report.absorbed = outcome.absorbed;
        report.stale = outcome.stale;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Lints the given workspace-relative files with the per-file passes
/// (token rules + panic audit). The call-graph passes only run under
/// [`check_workspace`]; `baseline` (usually [`load_baseline`]) absorbs
/// accepted findings.
pub fn check_paths(
    root: &Path,
    files: &[String],
    cfg: &Config,
    baseline: Option<&Baseline>,
) -> std::io::Result<Report> {
    let units = build_units(root, files)?;
    Ok(finish(per_file_passes(root, &units, cfg)?, baseline))
}

/// Discovers and lints every `.rs` file under `root` with all passes.
pub fn check_workspace(
    root: &Path,
    cfg: &Config,
    baseline: Option<&Baseline>,
) -> std::io::Result<Report> {
    let files = discover_files(root, cfg)?;
    let units = build_units(root, &files)?;
    let mut report = per_file_passes(root, &units, cfg)?;
    report.violations.extend(graph_passes(&units, cfg));
    Ok(finish(report, baseline))
}

/// Loads `detlint.toml` from `root`, falling back to defaults when the
/// file does not exist.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path: PathBuf = root.join("detlint.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Loads `detlint.baseline.json` from `root`; `Ok(None)` when absent.
pub fn load_baseline(root: &Path) -> Result<Option<Baseline>, String> {
    let path = root.join("detlint.baseline.json");
    match fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map(Some).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_grouping() {
        assert_eq!(crate_of("crates/sim/src/rng.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/property_tests.rs"), "root");
    }

    #[test]
    fn library_classification() {
        assert!(is_library_path("crates/sim/src/rng.rs"));
        assert!(is_library_path("src/lib.rs"));
        assert!(!is_library_path("crates/bench/src/bin/repro.rs"));
        assert!(!is_library_path("crates/lint/src/main.rs"));
        assert!(!is_library_path("tests/property_tests.rs"));
        assert!(!is_library_path("examples/quickstart.rs"));
        assert!(!is_library_path("crates/bench/benches/cluster.rs"));
    }
}
