//! A minimal hand-rolled Rust lexer — just enough structure for the
//! determinism rules in [`crate::rules`].
//!
//! The lexer's only job is to separate *code* from *non-code* so the rule
//! engine never fires on a `println!` inside a doc comment or an
//! `Instant::now` inside a string literal, and to keep accurate line
//! numbers for diagnostics. It handles the constructs that trip naive
//! regex scanners: nested block comments, raw strings with arbitrary
//! `#` counts, byte strings, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). It does **not** build an AST — the rules work on
//! token patterns plus a per-crate symbol table.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `for`, `HashMap`, …).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `#`, `(`, …).
    Punct(char),
    /// `// …` comment (includes `///` and `//!` doc comments).
    /// `trailing` is true when code precedes it on the same line.
    LineComment { text: String, trailing: bool },
    /// `/* … */` comment, possibly nested and multi-line.
    BlockComment { text: String },
    /// String literal of any flavour; contents are irrelevant to rules.
    Str,
    /// Character or byte literal.
    CharLit,
    /// Lifetime such as `'a` (also label targets like `'outer`).
    Lifetime,
    /// Numeric literal.
    Num,
}

impl Token {
    /// True for tokens that represent executable source rather than
    /// comments (used to decide whether a line "has code").
    #[must_use]
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// The identifier text, if this is an ident token.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// simply consume to end-of-file, which is good enough for a linter
/// (rustc will reject the file anyway).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line
    /// (distinguishes trailing comments from standalone ones).
    code_on_line: bool,
    out: Vec<Token>,
    src_len: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        let chars: Vec<char> = src.chars().collect();
        Lexer {
            src_len: chars.len(),
            chars,
            pos: 0,
            line: 1,
            code_on_line: false,
            out: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
                self.code_on_line = false;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        if !matches!(
            kind,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        ) {
            self.code_on_line = true;
        }
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        // A leading shebang (`#!/usr/bin/env …`) is the one place `#!`
        // does not start an inner attribute; treat it as a comment so
        // `#` and `!` never reach the rule engine as code. `#![…]` at
        // file top is still an attribute.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            self.line_comment(1);
        }
        while self.pos < self.src_len {
            let c = self.peek(0).expect("pos < len");
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_lit(line),
                '\'' => self.quote(line),
                'r' | 'b' | 'c' if self.raw_or_byte_prefix() => self.prefixed_lit(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let trailing = self.code_on_line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::LineComment { text, trailing }, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::BlockComment { text }, line);
    }

    /// Ordinary (possibly escaped) `"…"` string. Caller has seen the
    /// opening quote.
    fn string_lit(&mut self, line: u32) {
        self.bump(); // opening '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, line);
    }

    /// `'` starts either a lifetime (`'a`), a loop label (`'outer:`) or a
    /// char literal (`'a'`, `'\n'`). Disambiguation: `'X` where `X` is an
    /// ident char is a char literal only if the char after `X` is `'`.
    fn quote(&mut self, line: u32) {
        self.bump(); // '\''
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::CharLit, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    self.bump(); // the char
                    self.bump(); // closing quote
                    self.push(TokKind::CharLit, line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Lifetime, line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::CharLit, line);
            }
            None => self.push(TokKind::CharLit, line),
        }
    }

    /// True when the cursor sits on `r"`, `r#"`, `b"`, `b'`, `br"`,
    /// `br#"`, or (Rust 1.77) a C-string prefix `c"` / `cr"` / `cr#"` —
    /// a raw/byte/C literal rather than an identifier. `r#ident`
    /// (raw identifier) is *not* a literal and returns false.
    fn raw_or_byte_prefix(&self) -> bool {
        let c0 = self.peek(0);
        match c0 {
            Some('b' | 'c') => match self.peek(1) {
                Some('"') => true,
                Some('\'') => c0 == Some('b'),
                Some('r') => matches!(self.peek(2), Some('"' | '#')),
                _ => false,
            },
            Some('r') => match self.peek(1) {
                Some('"') => true,
                Some('#') => {
                    // r#"…"# raw string vs r#ident raw identifier: scan the
                    // run of '#'s; a quote after them means raw string.
                    let mut i = 1;
                    while self.peek(i) == Some('#') {
                        i += 1;
                    }
                    self.peek(i) == Some('"')
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, or a
    /// C-string (`c"…"`, `cr#"…"#`) after [`Self::raw_or_byte_prefix`]
    /// returned true.
    fn prefixed_lit(&mut self, line: u32) {
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.bump(); // 'b'
            self.quote(line);
            // quote() pushed CharLit/Lifetime; byte literals are CharLit —
            // b'x' disambiguates the same way as 'x'.
            return;
        }
        // Skip the r/b/br/c/cr prefix.
        while matches!(self.peek(0), Some('r' | 'b' | 'c')) {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening '"'
        if hashes == 0 && self.chars.get(self.pos.wrapping_sub(1)) != Some(&'"') {
            // Defensive: prefix check said literal but no quote followed.
            self.push(TokKind::Str, line);
            return;
        }
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                if hashes == 0 {
                    break;
                }
                // Need `hashes` consecutive '#' to close.
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            } else if c == '\\' && hashes == 0 {
                // b"…" honours escapes; raw strings do not.
                self.bump();
            }
        }
        self.push(TokKind::Str, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Ident(text), line);
    }

    fn number(&mut self, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` and `v.iter()` do not.
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
// Instant::now in a comment
/* HashMap.iter() in a block /* nested */ still comment */
let s = "Instant::now()";
let r = r#"SystemTime::now"#;
let actual = foo();
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"actual".to_string()));
        assert!(ids.contains(&"foo".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn char_escape_does_not_derail() {
        let toks = lex(r"let c = '\n'; let after = 1;");
        assert!(toks.iter().any(|t| t.ident() == Some("after")));
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let toks = lex(src);
        let flags: Vec<bool> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::LineComment { trailing, .. } => Some(*trailing),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\nz\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.ident() == Some("b")).expect("b");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        // r#type lexes as Punct? No: 'r' then '#' then ident. The rules
        // only need the final ident, so `r#type` yielding `type` is fine.
        let toks = lex("let r#type = 3;");
        assert!(toks.iter().any(|t| t.ident() == Some("type")));
    }

    #[test]
    fn c_string_literals_hide_contents() {
        // Rust 1.77 C strings: plain, raw, and escaped forms must all
        // lex as string literals, not identifiers + stray quotes.
        let src = r##"
let a = c"Instant::now()";
let b = cr#"SystemTime::now with "quotes""#;
let c = c"escaped \" quote";
let after = done();
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"quotes".to_string()));
        assert!(ids.contains(&"after".to_string()));
        assert!(ids.contains(&"done".to_string()));
        let strs = lex(src).iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn c_prefixed_identifiers_still_lex_as_idents() {
        // `c` / `cr` starting ordinary identifiers must not be eaten as
        // literal prefixes.
        let ids = idents("let count = crate_local + c + cr;");
        for want in ["count", "crate_local", "c", "cr"] {
            assert!(ids.contains(&want.to_string()), "missing `{want}`");
        }
    }

    #[test]
    fn shebang_line_is_a_comment() {
        let src = "#!/usr/bin/env run-cargo-script\nfn main() { f(); }";
        let toks = lex(src);
        assert!(matches!(
            toks.first().map(|t| &t.kind),
            Some(TokKind::LineComment { text, .. }) if text.starts_with("#!/usr")
        ));
        assert!(toks.iter().any(|t| t.ident() == Some("main")));
        // No stray `#` / `!` puncts from the shebang.
        assert!(!toks.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let toks = lex("#![allow(dead_code)]\nfn f() {}");
        assert!(toks.iter().any(|t| t.is_punct('#')));
        assert!(toks.iter().any(|t| t.ident() == Some("allow")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let ids = idents("for i in 0..10 { v.iter(); } let f = 1.5e3;");
        assert!(ids.contains(&"iter".to_string()));
        let toks = lex("1.5 2");
        let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 2);
    }
}
