//! `siteselect-lint` — a dependency-free determinism & safety analyzer
//! (`detlint`) for the `siteselect` workspace.
//!
//! Every result this repository reports rests on bit-identical replay:
//! the reproduction's deadline-hit percentages are trustworthy only
//! because `repro` produces the same bytes at every seed and job count.
//! `detlint` guards that property *statically* — before the runtime
//! diffs in `scripts/ci.sh` ever run — by walking every `.rs` file with
//! a hand-rolled lexer and enforcing the contract described in
//! [`rules`]: no wall-clock reads, no hash-ordered iteration in
//! deterministic crates, no ambient randomness, documented `unsafe`,
//! reasoned `#[allow]`s, and no stray printing from library code.
//!
//! Like the rest of the workspace it has **zero external dependencies**;
//! the config file ([`config`]) is a hand-parsed TOML subset and the
//! lexer ([`lexer`]) understands exactly as much Rust as the rules need.
//!
//! ```text
//! detlint check --workspace        # lint the whole repo (CI gate)
//! detlint check crates/sim/src/rng.rs
//! detlint rules                    # print the rule table
//! ```

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod flow;
pub mod json;
pub mod lexer;
pub mod locks;
pub mod panic;
pub mod parse;
pub mod rules;
pub mod workspace;

pub use config::Config;
pub use rules::{RuleId, Violation};
pub use workspace::{check_paths, check_workspace, load_baseline, load_config, Report};
