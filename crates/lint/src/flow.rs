//! Flow-sensitive escape analysis for D2 (hash-ordered iteration).
//!
//! v1 flagged *every* iteration over a `HashMap`/`HashSet`, which made
//! the rule mostly a suppression generator: the dominant safe patterns
//! (collect-then-sort, order-free folds) each needed an inline
//! annotation. v2 only reports an iteration whose order can **escape**.
//! Three safety proofs, each purely local to the enclosing function:
//!
//! 1. **Order-free terminal** — the method chain ends in a fold whose
//!    result does not depend on visit order (`sum`, `count`, `any`, …)
//!    and no chain closure emits/sends anything.
//! 2. **Collect-then-sort** — the iteration feeds a `let` binding via
//!    `.collect()` that is (a) typed/turbofished into an ordered
//!    container (`BTreeMap`/`BTreeSet`/`BinaryHeap`), or (b) sorted
//!    later in the same function (`bind.sort*(…)`).
//! 3. **Fill-then-sort** — a `for` loop body or `retain` closure whose
//!    only escapes are `X.push(…)`/`X.extend(…)` fills where *every*
//!    fill target is sorted after the region; `return`/`break`/`?`,
//!    emission, sends, prints, and `self.method(…)` calls in the region
//!    void the proof (unknown side effects observe the order).
//!
//! Anything not provably safe is still reported — the proofs shrink the
//! annotation burden, they do not relax the rule.

use crate::lexer::Token;
use crate::parse::ParsedFile;

/// Chain terminals whose value is independent of visit order.
const ORDER_FREE_TERMINALS: [&str; 9] = [
    "sum", "count", "min", "max", "any", "all", "product", "len", "is_empty",
];

/// Ordered collectors: collecting into one of these sorts by key.
const ORDERED_COLLECTORS: [&str; 3] = ["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Is the D2 method-call site at `i` (`name . method ( …`) provably
/// order-safe? `i` indexes the map name; `i + 2` the method.
#[must_use]
pub fn method_site_is_safe(code: &[&Token], parsed: &ParsedFile, i: usize, method: &str) -> bool {
    let (body_s, body_e) = enclosing_span(parsed, i, code.len());
    if method == "retain" {
        // `map.retain(|…| …)` — the closure is the region.
        let open = i + 3;
        let close = matching(code, open, '(', ')', body_e);
        return region_is_safe(code, open + 1, close, body_e);
    }
    let (last, ordered_collect, chain_end) = chain_scan(code, i + 3, body_e);
    if !span_has_observers(code, i + 3, chain_end)
        && (ordered_collect || last.is_some_and(|t| ORDER_FREE_TERMINALS.contains(&t)))
    {
        return true;
    }
    // `for pat in map.values() { … }` — the loop body is the region.
    if code.get(chain_end).is_some_and(|t| t.is_punct('{')) {
        let stmt_s = statement_start(code, i, body_s);
        let is_for = code[stmt_s..i].iter().any(|t| t.ident() == Some("for"))
            && code[stmt_s..i].iter().any(|t| t.ident() == Some("in"));
        if is_for {
            let close = matching(code, chain_end, '{', '}', body_e);
            return region_is_safe(code, chain_end + 1, close, body_e);
        }
    }
    collects_into_sorted_binding(code, i, body_s, body_e)
}

/// Is the D2 `for`-loop site safe? `body_open` indexes the loop body's
/// `{`.
#[must_use]
pub fn loop_site_is_safe(code: &[&Token], parsed: &ParsedFile, body_open: usize) -> bool {
    let (_, body_e) = enclosing_span(parsed, body_open, code.len());
    let close = matching(code, body_open, '{', '}', body_e);
    region_is_safe(code, body_open + 1, close, body_e)
}

/// The enclosing fn body span, or the whole file for top-level code.
fn enclosing_span(parsed: &ParsedFile, i: usize, len: usize) -> (usize, usize) {
    parsed
        .fn_containing(i)
        .and_then(|f| f.body)
        .unwrap_or((0, len))
}

/// Index of the token closing the group opened at `open` (bounded).
fn matching(code: &[&Token], open: usize, oc: char, cc: char, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end.min(code.len()) {
        if code[k].is_punct(oc) {
            depth += 1;
        } else if code[k].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end.min(code.len())
}

/// Walks the method chain starting at the call whose `(` is at
/// `call_open`. Returns the last chained method, whether an ordered
/// container was collected via turbofish, and the index one past the
/// chain (the first non-chain token).
fn chain_scan<'c>(
    code: &'c [&Token],
    call_open: usize,
    end: usize,
) -> (Option<&'c str>, bool, usize) {
    if !code.get(call_open).is_some_and(|t| t.is_punct('(')) {
        return (None, false, call_open);
    }
    let mut last: Option<&str> = None;
    let mut ordered_collect = false;
    let mut k = matching(code, call_open, '(', ')', end) + 1;
    loop {
        if !code.get(k).is_some_and(|t| t.is_punct('.')) {
            break;
        }
        let Some(m) = code.get(k + 1).and_then(|t| t.ident()) else {
            break;
        };
        let mut j = k + 2;
        // `.collect::<BTreeMap<…>>(…)` turbofish.
        if code.get(j).is_some_and(|t| t.is_punct(':'))
            && code.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            let close = skip_angles(code, j + 2, end);
            if m == "collect"
                && (j + 2..close).any(|x| {
                    code[x]
                        .ident()
                        .is_some_and(|n| ORDERED_COLLECTORS.contains(&n))
                })
            {
                ordered_collect = true;
            }
            j = close;
        }
        if !code.get(j).is_some_and(|t| t.is_punct('(')) {
            break; // field access or end of expression
        }
        last = Some(m);
        k = matching(code, j, '(', ')', end) + 1;
    }
    (last, ordered_collect, k)
}

/// `<…>` skip with `->` guard; returns index one past the closing `>`.
fn skip_angles(code: &[&Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end.min(code.len()) {
        if code[k].is_punct('-') && code.get(k + 1).is_some_and(|t| t.is_punct('>')) {
            k += 2;
            continue;
        }
        if code[k].is_punct('<') {
            depth += 1;
        } else if code[k].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// True when the span contains an emission, send, or print — a way for
/// per-element work to observe the iteration order.
fn span_has_observers(code: &[&Token], s: usize, e: usize) -> bool {
    for k in s..e.min(code.len()) {
        let Some(name) = code[k].ident() else { continue };
        let called = code.get(k + 1).is_some_and(|t| t.is_punct('('));
        if (name == "emit" || name == "send") && called {
            return true;
        }
        if matches!(name, "println" | "print" | "eprintln" | "eprint" | "dbg")
            && code.get(k + 1).is_some_and(|t| t.is_punct('!'))
        {
            return true;
        }
    }
    false
}

/// Proof 2: the statement containing `site` is
/// `let [mut] BIND [: Ty] = <chain with .collect…> ;` where BIND is
/// either collected into an ordered container or sorted later in the
/// function.
fn collects_into_sorted_binding(
    code: &[&Token],
    site: usize,
    body_s: usize,
    body_e: usize,
) -> bool {
    let stmt_s = statement_start(code, site, body_s);
    let stmt_e = statement_end(code, site, body_e);
    // Pattern: let [mut] BIND …
    let mut j = stmt_s;
    if code.get(j).and_then(|t| t.ident()) != Some("let") {
        return false;
    }
    j += 1;
    if code.get(j).and_then(|t| t.ident()) == Some("mut") {
        j += 1;
    }
    let Some(bind) = code.get(j).and_then(|t| t.ident()) else {
        return false;
    };
    j += 1;
    // Optional `: Type` — an ordered container type is proof by itself.
    if code.get(j).is_some_and(|t| t.is_punct(':'))
        && !code.get(j + 1).is_some_and(|t| t.is_punct(':'))
    {
        let ty_end = (j..stmt_e)
            .find(|&k| code[k].is_punct('='))
            .unwrap_or(stmt_e);
        if (j..ty_end).any(|k| {
            code[k]
                .ident()
                .is_some_and(|n| ORDERED_COLLECTORS.contains(&n))
        }) {
            return true;
        }
        j = ty_end;
    }
    if !code.get(j).is_some_and(|t| t.is_punct('=')) {
        return false;
    }
    // The initializer must actually collect.
    let mut collected = false;
    for k in site..stmt_e {
        if code[k].ident() == Some("collect") {
            collected = true;
            // Ordered-container turbofish is proof by itself.
            if code.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && code.get(k + 3).is_some_and(|t| t.is_punct('<'))
            {
                let close = skip_angles(code, k + 3, stmt_e);
                if (k + 3..close).any(|x| {
                    code[x]
                        .ident()
                        .is_some_and(|n| ORDERED_COLLECTORS.contains(&n))
                }) {
                    return true;
                }
            }
        }
    }
    if !collected {
        return false;
    }
    sorted_later(code, bind, stmt_e, body_e)
}

/// Backward scan to the start of the statement containing `site`.
/// Brackets/parens are balanced; a `{`, `}`, or `;` at depth 0 is a
/// statement boundary (`}` ends a preceding block statement — braces
/// nested inside parens are ignored by the depth rule and stay inside).
pub(crate) fn statement_start(code: &[&Token], site: usize, body_s: usize) -> usize {
    let mut depth = 0i32;
    let mut j = site;
    while j > body_s {
        let t = code[j - 1];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) && depth == 0 {
            break;
        }
        j -= 1;
    }
    j
}

/// Forward scan to one past the `;` ending the statement at `site`.
fn statement_end(code: &[&Token], site: usize, body_e: usize) -> usize {
    let mut depth = 0i32;
    let mut k = site;
    while k < body_e.min(code.len()) {
        let t = code[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return k;
        }
        k += 1;
    }
    k
}

/// `target.sort*(…)` anywhere in `[s, e)`. `target` may be plain
/// (`done`) or a `self.` field (`self.touched` — matched on the field).
fn sorted_later(code: &[&Token], target: &str, s: usize, e: usize) -> bool {
    for k in s..e.min(code.len()) {
        if code[k].ident() == Some(target)
            && code.get(k + 1).is_some_and(|t| t.is_punct('.'))
            && code
                .get(k + 2)
                .and_then(|t| t.ident())
                .is_some_and(|m| m.starts_with("sort"))
            && code.get(k + 3).is_some_and(|t| t.is_punct('('))
        {
            return true;
        }
    }
    false
}

/// Proof 3: a region (loop body / retain closure) whose only escapes
/// are fills into subsequently-sorted collections.
fn region_is_safe(code: &[&Token], s: usize, e: usize, body_e: usize) -> bool {
    let mut fills: Vec<&str> = Vec::new();
    let mut k = s;
    while k < e.min(code.len()) {
        let t = code[k];
        // Control flow / effects that observe order void the proof.
        if t.is_punct('?') {
            return false;
        }
        if let Some(name) = t.ident() {
            if name == "return" || name == "break" {
                return false;
            }
            // `self.method(…)` — unknown side effects. (`self.field.push`
            // is re-matched below as a fill on the field.)
            if name == "self"
                && code.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && code.get(k + 2).and_then(|t| t.ident()).is_some()
                && code.get(k + 3).is_some_and(|t| t.is_punct('('))
            {
                let m = code[k + 2].ident().unwrap_or("");
                if !matches!(m, "push" | "extend") {
                    return false;
                }
            }
            // `X.push(…)` / `X.extend(…)` — record the fill target.
            if code.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && matches!(code.get(k + 2).and_then(|t| t.ident()), Some("push" | "extend"))
                && code.get(k + 3).is_some_and(|t| t.is_punct('('))
                && name != "self"
            {
                fills.push(name);
            }
        }
        k += 1;
    }
    if span_has_observers(code, s, e) {
        return false;
    }
    !fills.is_empty() && fills.iter().all(|f| sorted_later(code, f, e, body_e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::{code_tokens, parse_file};

    /// Runs the full D2 check over `src` and returns the flagged lines.
    fn d2_lines(src: &str) -> Vec<u32> {
        use crate::rules::{check_file, FileContext};
        use std::collections::BTreeSet;
        let empty = BTreeSet::new();
        let ctx = FileContext {
            path: "crates/core/src/t.rs",
            allow_wall_clock: false,
            allow_rng: false,
            deterministic: true,
            library: true,
            allow_print: false,
            crate_map_names: &empty,
        };
        check_file(src, &ctx)
            .violations
            .iter()
            .filter(|v| v.rule == crate::rules::RuleId::D2)
            .map(|v| v.line)
            .collect()
    }

    #[test]
    fn order_free_terminals_are_safe() {
        let src = r"
fn f(m: &HashMap<u32, Vec<u32>>) -> usize {
    let total: usize = m.values().map(|v| v.len()).sum();
    let any_big = m.keys().any(|k| *k > 7);
    let n = m.iter().count();
    total + n + usize::from(any_big)
}
";
        assert_eq!(d2_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn terminal_with_a_send_inside_still_fires() {
        let src = r"
fn f(m: &HashMap<u32, u32>, tx: &Sender<u32>) -> usize {
    m.values().map(|v| { tx.send(*v); *v }).count()
}
";
        assert_eq!(d2_lines(src), vec![3]);
    }

    #[test]
    fn collect_then_sort_is_safe_and_unsorted_collect_fires() {
        let src = r"
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    let vs: Vec<u32> = m.values().copied().collect();
    vs
}
";
        assert_eq!(d2_lines(src), vec![5]);
    }

    #[test]
    fn collect_into_ordered_containers_is_safe() {
        let src = r"
fn f(m: &HashMap<u32, u32>) {
    let sorted: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
    let set = m.keys().copied().collect::<BTreeSet<u32>>();
}
";
        assert_eq!(d2_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn loop_fill_then_sort_is_safe() {
        let src = r"
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut touched = Vec::new();
    for (k, v) in &m {
        touched.push(*k);
    }
    touched.sort_unstable();
    touched
}
";
        // The symbol table sees `m` declared as `&HashMap` via the
        // signature's `name: Type` pattern; the loop is proven safe.
        assert_eq!(d2_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn loop_that_returns_or_emits_fires() {
        let ret = r"
fn f(m: &HashMap<u32, u32>) -> Option<u32> {
    for (k, v) in &m {
        if *v > 3 { return Some(*k); }
    }
    None
}
";
        assert_eq!(d2_lines(ret), vec![3]);
        let emit = r"
fn f(m: &HashMap<u32, u32>, sink: &S) {
    let mut acc = Vec::new();
    for (k, v) in &m {
        acc.push(*k);
        sink.emit(*v);
    }
    acc.sort_unstable();
}
";
        assert_eq!(d2_lines(emit), vec![4]);
    }

    #[test]
    fn retain_filling_a_sorted_vec_is_safe_bare_retain_fires() {
        let safe = r"
fn f(m: &mut HashMap<u32, u32>) -> Vec<u32> {
    let mut done = Vec::new();
    m.retain(|k, v| { if *v == 0 { done.push(*k); false } else { true } });
    done.sort_unstable();
    done
}
";
        assert_eq!(d2_lines(safe), Vec::<u32>::new());
        let unsafe_src = r"
fn f(m: &mut HashMap<u32, u32>, tx: &Sender<u32>) {
    m.retain(|k, v| { tx.send(*k); *v > 0 });
}
";
        assert_eq!(d2_lines(unsafe_src), vec![3]);
    }

    #[test]
    fn loop_with_no_fills_fires() {
        let src = r#"
fn f(m: &HashMap<u32, u32>, out: &mut String) {
    for (k, v) in &m {
        out.push_str(&format!("{k}"));
    }
}
"#;
        assert_eq!(d2_lines(src), vec![3]);
    }

    #[test]
    fn preceding_block_statements_do_not_confuse_the_binding_scan() {
        // The `if … { continue; }` before the `let` ends with `}` — the
        // backward scan must stop there, not swallow the block.
        let src = r"
struct S { txns: HashMap<u64, u32> }
impl S {
    fn f(&mut self) {
        for ci in 0..self.clients.len() {
            if !self.faults.up[ci] {
                continue;
            }
            let mut stranded: Vec<u64> =
                self.clients[ci].txns.keys().copied().collect();
            stranded.sort_unstable();
        }
    }
}
";
        assert_eq!(d2_lines(src), Vec::<u32>::new());
    }

    #[test]
    fn for_over_method_chain_with_fill_then_sort_is_safe() {
        let src = r"
struct S { waits_of: HashMap<u64, Vec<u64>> }
impl S {
    fn f(&mut self) {
        let mut touched = Vec::new();
        for objs in self.waits_of.values() {
            touched.extend(objs.iter().copied());
        }
        touched.sort_unstable();
    }
    fn g(&self) -> u64 {
        for objs in self.waits_of.values() {
            if objs.is_empty() { return 0; }
        }
        1
    }
}
";
        assert_eq!(d2_lines(src), vec![12]);
    }

    #[test]
    fn statement_bounds_are_found_through_nested_groups() {
        let toks = lex("fn f() { let x = g(h(1), [2, 3]); x.sort(); }");
        let code = code_tokens(&toks);
        let parsed = parse_file(&code);
        let x_idx = code.iter().position(|t| t.ident() == Some("x")).unwrap();
        let (s, e) = parsed.fns[0].body.unwrap();
        let st = statement_start(&code, x_idx, s);
        assert_eq!(code[st].ident(), Some("let"));
        let en = statement_end(&code, x_idx, e);
        assert!(code[en].is_punct(';'));
        assert!(sorted_later(&code, "x", en, e));
    }
}
