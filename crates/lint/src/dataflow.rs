//! Interprocedural taint dataflow for D1 (wall clock) and D3 (ambient
//! randomness).
//!
//! The per-file token rules only see *direct* uses of `Instant::now()`
//! etc. This pass propagates the taint through the workspace call graph
//! so a helper in an allowlisted crate (`bench`, the cluster harness)
//! is flagged **at the call site inside deterministic code** — the
//! place that has to change.
//!
//! Mechanics: each function gets a per-kind summary (tainted or not,
//! with a witness chain down to the seeding call); a fixpoint loop
//! unions summaries along call edges. Reporting then applies the
//! *frontier rule*: a call is a violation only when the caller's file
//! is **not** allowlisted for the rule but the callee's defining file
//! **is**. A tainted callee in a non-allowlisted file is not reported
//! at its call sites — the taint inside it is either a direct use
//! (already a per-file violation there) or itself a frontier call
//! reported in *that* file. Every flow is reported exactly once, where
//! the fix belongs.

use crate::callgraph::{CallGraph, FnId, Unit};
use crate::lexer::Token;
use crate::rules::{allowed_by_line, RuleId, Violation, AMBIENT_RNG_IDENTS};
use std::collections::{BTreeMap, BTreeSet};

/// Per-file rule applicability, derived from `detlint.toml` by the
/// workspace layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitPolicy {
    /// File is allowlisted for D1 (may read the wall clock).
    pub allow_wall_clock: bool,
    /// File is allowlisted for D3 (may use ambient randomness).
    pub allow_rng: bool,
}

/// Why a function is tainted: the seeding use and the call chain from
/// this function down to it.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Human description of the seed (e.g. "`Instant::now()`").
    pub what: String,
    pub seed_file: String,
    pub seed_line: u32,
    /// Qualified fn names, tainted fn first, seed fn last (capped).
    pub chain: Vec<String>,
}

const CHAIN_CAP: usize = 8;

#[derive(Debug, Default, Clone)]
struct Taint {
    wall: Option<Witness>,
    rng: Option<Witness>,
}

/// Per-function taint summaries at fixpoint.
pub struct TaintSummaries {
    taint: Vec<Taint>,
}

impl TaintSummaries {
    /// Wall-clock witness for `f`, if tainted.
    #[must_use]
    pub fn wall(&self, f: FnId) -> Option<&Witness> {
        self.taint[f].wall.as_ref()
    }

    /// Ambient-randomness witness for `f`, if tainted.
    #[must_use]
    pub fn rng(&self, f: FnId) -> Option<&Witness> {
        self.taint[f].rng.as_ref()
    }
}

/// Computes taint summaries for every function.
#[must_use]
pub fn compute(units: &[Unit], graph: &CallGraph) -> TaintSummaries {
    let mut taint: Vec<Taint> = Vec::with_capacity(graph.fns.len());
    // Direct seeds.
    let codes: Vec<Vec<&Token>> = units.iter().map(Unit::code).collect();
    for (id, node) in graph.fns.iter().enumerate() {
        let unit = &units[node.unit];
        let def = &unit.parsed.fns[node.def];
        let mut t = Taint::default();
        if let Some((s, e)) = def.body {
            let code = &codes[node.unit];
            for i in s..e {
                if unit.parsed.fn_containing(i).is_none_or(|f| !std::ptr::eq(f, def)) {
                    continue; // nested fn's tokens belong to the nested node
                }
                if t.wall.is_none() {
                    if let Some(what) = wall_seed(code, i) {
                        t.wall = Some(Witness {
                            what,
                            seed_file: unit.path.clone(),
                            seed_line: code[i].line,
                            chain: vec![graph.fns[id].qualified.clone()],
                        });
                    }
                }
                if t.rng.is_none() {
                    if let Some(what) = rng_seed(code, i) {
                        t.rng = Some(Witness {
                            what,
                            seed_file: unit.path.clone(),
                            seed_line: code[i].line,
                            chain: vec![graph.fns[id].qualified.clone()],
                        });
                    }
                }
                if t.wall.is_some() && t.rng.is_some() {
                    break;
                }
            }
        }
        taint.push(t);
    }
    // Fixpoint: union callee taint into callers. The graph is small
    // (a few thousand nodes) so a simple iterate-until-stable loop in
    // deterministic FnId order is fast and gives deterministic
    // witnesses.
    loop {
        let mut changed = false;
        for caller in 0..graph.fns.len() {
            for call in &graph.calls[caller] {
                let callee_wall = taint[call.callee].wall.clone();
                let callee_rng = taint[call.callee].rng.clone();
                if taint[caller].wall.is_none() {
                    if let Some(w) = callee_wall {
                        taint[caller].wall = Some(extend(&graph.fns[caller].qualified, w));
                        changed = true;
                    }
                }
                if taint[caller].rng.is_none() {
                    if let Some(w) = callee_rng {
                        taint[caller].rng = Some(extend(&graph.fns[caller].qualified, w));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return TaintSummaries { taint };
        }
    }
}

fn extend(caller: &str, mut w: Witness) -> Witness {
    w.chain.insert(0, caller.to_string());
    w.chain.truncate(CHAIN_CAP);
    w
}

/// `Instant::now` / `SystemTime::…` at code index `i`.
fn wall_seed(code: &[&Token], i: usize) -> Option<String> {
    let name = code[i].ident()?;
    let sep = code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.is_punct(':'));
    if name == "Instant" && sep && code.get(i + 3).and_then(|t| t.ident()) == Some("now") {
        return Some("`Instant::now()`".into());
    }
    if name == "SystemTime" && sep {
        return Some("`SystemTime`".into());
    }
    None
}

/// Ambient-randomness idents / `rand::` paths at code index `i`.
fn rng_seed(code: &[&Token], i: usize) -> Option<String> {
    let name = code[i].ident()?;
    if AMBIENT_RNG_IDENTS.contains(&name) {
        return Some(format!("`{name}`"));
    }
    if name == "rand"
        && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        return Some("`rand::`".into());
    }
    None
}

/// Applies the frontier rule and returns the interprocedural D1/D3
/// violations, honoring inline suppressions in the caller file.
#[must_use]
pub fn check(units: &[Unit], graph: &CallGraph, policies: &[UnitPolicy]) -> Vec<Violation> {
    let summaries = compute(units, graph);
    let allowed: Vec<BTreeMap<u32, BTreeSet<RuleId>>> = units
        .iter()
        .map(|u| allowed_by_line(&u.tokens))
        .collect();
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, u32, RuleId)> = BTreeSet::new();
    for (caller, node) in graph.fns.iter().enumerate() {
        let unit = &units[node.unit];
        let def = &unit.parsed.fns[node.def];
        if def.test_only {
            continue;
        }
        let pol = policies[node.unit];
        for call in &graph.calls[caller] {
            if unit.parsed.in_test_span(call.tok) {
                continue;
            }
            let callee_unit = graph.fns[call.callee].unit;
            let callee_pol = policies[callee_unit];
            let mut frontier = |rule: RuleId,
                               caller_allowed: bool,
                               callee_allowed: bool,
                               witness: Option<&Witness>,
                               out: &mut Vec<Violation>| {
                let Some(w) = witness else { return };
                if caller_allowed || !callee_allowed {
                    return; // not a frontier call for this rule
                }
                if allowed[node.unit]
                    .get(&call.line)
                    .is_some_and(|rs| rs.contains(&rule))
                {
                    return;
                }
                if !seen.insert((node.unit, call.line, rule)) {
                    return; // one report per line per rule
                }
                out.push(Violation {
                    file: unit.path.clone(),
                    line: call.line,
                    rule,
                    message: format!(
                        "call to `{}` reaches {} ({}:{}) — via {}",
                        call.display,
                        w.what,
                        w.seed_file,
                        w.seed_line,
                        w.chain.join(" → "),
                    ),
                });
            };
            frontier(
                RuleId::D1,
                pol.allow_wall_clock,
                callee_pol.allow_wall_clock,
                summaries.wall(call.callee),
                &mut out,
            );
            frontier(
                RuleId::D3,
                pol.allow_rng,
                callee_pol.allow_rng,
                summaries.rng(call.callee),
                &mut out,
            );
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Unit;

    /// Mini-workspace: `bench` is allowlisted for both rules, `core` is
    /// not.
    fn setup(core_src: &str, bench_src: &str) -> (Vec<Unit>, CallGraph, Vec<UnitPolicy>) {
        let units = vec![
            Unit::new(
                "crates/bench/src/helpers.rs".into(),
                "bench".into(),
                bench_src,
            ),
            Unit::new("crates/core/src/engine.rs".into(), "core".into(), core_src),
        ];
        let graph = CallGraph::build(&units);
        let policies = vec![
            UnitPolicy {
                allow_wall_clock: true,
                allow_rng: true,
            },
            UnitPolicy::default(),
        ];
        (units, graph, policies)
    }

    #[test]
    fn cross_crate_wall_clock_flow_is_flagged_at_the_frontier() {
        let (units, graph, policies) = setup(
            "fn tick() { siteselect_bench::helpers::stamp_micros(); }",
            "pub fn stamp_micros() -> u128 { std::time::Instant::now().elapsed().as_micros() }",
        );
        let v = check(&units, &graph, &policies);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::D1);
        assert_eq!(v[0].file, "crates/core/src/engine.rs");
        assert!(v[0].message.contains("Instant::now"), "{}", v[0].message);
        assert!(v[0].message.contains("crates/bench/src/helpers.rs"), "{}", v[0].message);
    }

    #[test]
    fn transitive_flows_report_once_at_the_deepest_frontier() {
        // core::outer → core::mid → bench::seed: the frontier is
        // mid→seed; outer→mid must NOT double-report.
        let (units, graph, policies) = setup(
            r"
fn outer() { mid(); }
fn mid() { siteselect_bench::helpers::seed(); }
",
            "pub fn seed() { let _ = std::time::Instant::now(); }",
        );
        let v = check(&units, &graph, &policies);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`helpers::seed`") || v[0].message.contains("seed"));
    }

    #[test]
    fn rng_taint_propagates_and_annotations_suppress() {
        let (units, graph, policies) = setup(
            r"
fn a() { siteselect_bench::helpers::jitter(); }
// detlint: allow(D3) — deliberate jitter in the bench-only path
fn b() { siteselect_bench::helpers::jitter(); }
",
            "pub fn jitter() -> u64 { thread_rng() }",
        );
        let v = check(&units, &graph, &policies);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::D3);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn calls_to_clean_helpers_are_not_flagged() {
        let (units, graph, policies) = setup(
            "fn f() { siteselect_bench::helpers::pure(); }",
            "pub fn pure() -> u64 { 42 }",
        );
        assert!(check(&units, &graph, &policies).is_empty());
    }

    #[test]
    fn test_only_callers_are_exempt() {
        let (units, graph, policies) = setup(
            r"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { siteselect_bench::helpers::stamp(); }
}
",
            "pub fn stamp() -> u128 { std::time::Instant::now().elapsed().as_micros() }",
        );
        assert!(check(&units, &graph, &policies).is_empty());
    }
}
