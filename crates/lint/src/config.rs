//! `detlint.toml` — hand-parsed configuration for the determinism &
//! safety contract.
//!
//! The workspace is dependency-free, so instead of a TOML crate this
//! module parses the small subset the config actually uses: `[section]`
//! headers, `key = "string"`, and `key = [ "a", "b" ]` arrays that may
//! span lines. `#` starts a comment anywhere outside a string.
//!
//! ```toml
//! [scan]
//! exclude = ["target/", ".git/"]
//!
//! [deterministic]
//! crates = ["sim", "core"]
//!
//! [rules.D1]
//! allow = ["crates/bench/**"]
//! ```

use crate::rules::RuleId;
use std::fmt;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path patterns (relative to the workspace root) never scanned.
    pub exclude: Vec<String>,
    /// Crate directory names under `crates/` whose code must replay
    /// bit-identically; `root` means the workspace root package
    /// (`src/`, `tests/`, `examples/`).
    pub deterministic_crates: Vec<String>,
    /// Per-rule path allowlists: a file matching a pattern is exempt
    /// from that rule without needing an inline annotation.
    pub allow: Vec<(RuleId, Vec<String>)>,
    /// Per-rule crate scoping (`crates = [...]` under `[rules.Dn]`):
    /// the rule's pass only analyzes files belonging to these crates.
    /// Used by D7/D8 (lock-order, default: nothing) and D9 (panic
    /// audit over the engine crates). Rules without an entry keep
    /// their default scope (everywhere the rule applies).
    pub rule_crates: Vec<(RuleId, Vec<String>)>,
}

/// A config-file syntax error with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "detlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Default for Config {
    /// The contract this repository ships with; `detlint.toml` overrides it.
    fn default() -> Self {
        Config {
            exclude: vec!["target/".into(), ".git/".into()],
            deterministic_crates: Vec::new(),
            allow: Vec::new(),
            rule_crates: Vec::new(),
        }
    }
}

impl Config {
    /// Patterns allowlisted for `rule`.
    #[must_use]
    pub fn allowed_paths(&self, rule: RuleId) -> &[String] {
        self.allow
            .iter()
            .find(|(r, _)| *r == rule)
            .map_or(&[], |(_, v)| v.as_slice())
    }

    /// True when `path` (workspace-relative, `/`-separated) is exempt
    /// from `rule` by configuration.
    #[must_use]
    pub fn is_allowed(&self, rule: RuleId, path: &str) -> bool {
        self.allowed_paths(rule).iter().any(|p| glob_match(p, path))
    }

    /// True when `path` should not be scanned at all.
    #[must_use]
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| glob_match(p, path))
    }

    /// True when `path` lies inside a deterministic crate.
    #[must_use]
    pub fn is_deterministic_path(&self, path: &str) -> bool {
        Self::crate_list_covers(&self.deterministic_crates, path)
    }

    /// Crate names a rule's pass is scoped to, if configured.
    #[must_use]
    pub fn rule_crates(&self, rule: RuleId) -> Option<&[String]> {
        self.rule_crates
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, v)| v.as_slice())
    }

    /// True when `rule` is scoped to crates and `path` lies in one of
    /// them. Rules without a `crates = [...]` entry return false — the
    /// scoped passes (D7/D8/D9) are opt-in per crate.
    #[must_use]
    pub fn rule_applies_to(&self, rule: RuleId, path: &str) -> bool {
        self.rule_crates(rule)
            .is_some_and(|crates| Self::crate_list_covers(crates, path))
    }

    /// Shared membership test for crate-name lists: `root` means the
    /// workspace package (`src/`, `tests/`, `examples/`), anything else
    /// the crate directory under `crates/`.
    fn crate_list_covers(crates: &[String], path: &str) -> bool {
        crates.iter().any(|c| {
            if c == "root" {
                path.starts_with("src/")
                    || path.starts_with("tests/")
                    || path.starts_with("examples/")
            } else {
                path.starts_with(&format!("crates/{c}/"))
            }
        })
    }

    /// Parses the config text. Unknown sections and keys are errors so a
    /// typo in `detlint.toml` cannot silently disable a rule.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config {
            exclude: Vec::new(),
            deterministic_crates: Vec::new(),
            allow: Vec::new(),
            rule_crates: Vec::new(),
        };
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = (idx + 1) as u32;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("unterminated section header `{line}`"),
                })?;
                section = name.trim().to_string();
                match section.as_str() {
                    "scan" | "deterministic" => {}
                    s if s.strip_prefix("rules.").is_some_and(|r| {
                        RuleId::parse(r).is_some()
                    }) => {}
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown section `[{other}]`"),
                        })
                    }
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Arrays may span lines: keep appending until brackets balance.
            if value.starts_with('[') {
                while !value.contains(']') {
                    let (_, cont) = lines.next().ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("unterminated array for key `{key}`"),
                    })?;
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                }
            }
            let values = parse_value(&value, lineno)?;
            match (section.as_str(), key) {
                ("scan", "exclude") => cfg.exclude = values,
                ("deterministic", "crates") => cfg.deterministic_crates = values,
                (s, "allow" | "crates") => {
                    let rule_name = s.strip_prefix("rules.").unwrap_or("");
                    let rule = RuleId::parse(rule_name).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("unknown rule `{rule_name}`"),
                    })?;
                    if key == "allow" {
                        cfg.allow.push((rule, values));
                    } else {
                        cfg.rule_crates.push((rule, values));
                    }
                }
                (s, k) => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key `{k}` in section `[{s}]`"),
                    })
                }
            }
        }
        if cfg.exclude.is_empty() {
            cfg.exclude = Config::default().exclude;
        }
        Ok(cfg)
    }
}

/// Splits off a `#` comment, ignoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `[ "a", "b" ]` into a list of strings.
fn parse_value(value: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    let err = |message: String| ConfigError { line, message };
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(format!("unterminated array `{value}`")))?;
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(unquote(part).ok_or_else(|| {
                err(format!("array element `{part}` is not a quoted string"))
            })?);
        }
        Ok(out)
    } else {
        Ok(vec![unquote(value)
            .ok_or_else(|| err(format!("value `{value}` is not a quoted string")))?])
    }
}

fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(String::from)
}

/// Tiny glob matcher: `*` matches any run of characters **including**
/// `/` (so `crates/bench/**` and `crates/bench/*` behave alike); every
/// other character matches itself. A pattern with no `*` matches as a
/// path prefix, so `crates/bench/` covers the whole crate.
#[must_use]
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn rec(p: &[u8], s: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'*') => {
                // Collapse consecutive stars, then try every split point.
                let rest = {
                    let mut i = 0;
                    while p.get(i) == Some(&b'*') {
                        i += 1;
                    }
                    &p[i..]
                };
                (0..=s.len()).any(|k| rec(rest, &s[k..]))
            }
            Some(&c) => s.first() == Some(&c) && rec(&p[1..], &s[1..]),
        }
    }
    if !pattern.contains('*') {
        return path.starts_with(pattern) || path == pattern.trim_end_matches('/');
    }
    rec(pattern.as_bytes(), path.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = Config::parse(
            r#"
# comment
[scan]
exclude = ["target/", ".git/"]

[deterministic]
crates = [
    "sim",  # trailing comment
    "core",
]

[rules.D1]
allow = ["crates/bench/**", "crates/cluster/src/runtime.rs"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.deterministic_crates, vec!["sim", "core"]);
        assert!(cfg.is_allowed(RuleId::D1, "crates/bench/src/harness.rs"));
        assert!(cfg.is_allowed(RuleId::D1, "crates/cluster/src/runtime.rs"));
        assert!(!cfg.is_allowed(RuleId::D1, "crates/sim/src/rng.rs"));
        assert!(cfg.is_excluded("target/debug/build.rs"));
        assert!(cfg.is_deterministic_path("crates/sim/src/rng.rs"));
        assert!(!cfg.is_deterministic_path("crates/cluster/src/sync.rs"));
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        assert!(Config::parse("[rules.D12]\nallow = [\"x\"]").is_err());
        assert!(Config::parse("[scan]\ninclude = [\"x\"]").is_err());
        assert!(Config::parse("[surprise]\n").is_err());
    }

    #[test]
    fn rule_crate_scoping_parses_and_matches() {
        let cfg = Config::parse(
            "[rules.D9]\ncrates = [\"core\", \"sim\", \"root\"]\n[rules.D7]\ncrates = [\"cluster\"]\n",
        )
        .expect("parses");
        assert!(cfg.rule_applies_to(RuleId::D9, "crates/core/src/buffer.rs"));
        assert!(cfg.rule_applies_to(RuleId::D9, "tests/property_tests.rs"));
        assert!(!cfg.rule_applies_to(RuleId::D9, "crates/cluster/src/server.rs"));
        assert!(cfg.rule_applies_to(RuleId::D7, "crates/cluster/src/server.rs"));
        // Unscoped rules are opt-in: no entry means the pass skips.
        assert!(!cfg.rule_applies_to(RuleId::D8, "crates/cluster/src/server.rs"));
        assert_eq!(cfg.rule_crates(RuleId::D7).unwrap(), ["cluster"]);
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("crates/bench/", "crates/bench/src/lib.rs"));
        assert!(glob_match("crates/*/benches/*", "crates/bench/benches/cluster.rs"));
        assert!(!glob_match("crates/bench/", "crates/cluster/src/lib.rs"));
        assert!(glob_match("examples/", "examples/quickstart.rs"));
        assert!(glob_match("tests/", "tests/property_tests.rs"));
        assert!(glob_match("src/bin/", "src/bin/tool.rs"));
    }

    #[test]
    fn root_pseudo_crate_covers_workspace_package() {
        let cfg = Config::parse("[deterministic]\ncrates = [\"root\"]").expect("ok");
        assert!(cfg.is_deterministic_path("src/lib.rs"));
        assert!(cfg.is_deterministic_path("tests/property_tests.rs"));
        assert!(!cfg.is_deterministic_path("crates/sim/src/lib.rs"));
    }
}
