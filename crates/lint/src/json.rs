//! A minimal JSON reader/writer — just enough for
//! `detlint.baseline.json` and `detlint check --json`, keeping the
//! crate dependency-free.
//!
//! The writer is deterministic by construction: objects are backed by
//! [`BTreeMap`], so the same report always serializes to the same
//! bytes (the CI gate diffs them directly).

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64` — the lint formats
/// only ever store small non-negative integers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The number as a usize, if this is a non-negative integer.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // exact non-negative integer: the guard makes the cast lossless
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON document.
///
/// # Errors
///
/// A message with a byte offset on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_shape() {
        let v = parse(r#"{"version": 1, "counts": {"a.rs": {"D9": 3}}}"#).unwrap();
        assert_eq!(v.get("version").and_then(Value::as_usize), Some(1));
        let counts = v.get("counts").unwrap().as_obj().unwrap();
        assert_eq!(
            counts["a.rs"].get("D9").and_then(Value::as_usize),
            Some(3)
        );
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let s = "a\"b\\c\nd\te";
        let q = quote(s);
        assert_eq!(parse(&q).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2").is_err());
    }

    #[test]
    fn arrays_and_literals() {
        let v = parse(r#"[true, false, null, 7, "x"]"#).unwrap();
        let Value::Arr(items) = v else { panic!() };
        assert_eq!(items.len(), 5);
        assert_eq!(items[3].as_usize(), Some(7));
    }
}
