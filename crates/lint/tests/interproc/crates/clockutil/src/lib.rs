//! Wall-clock helper, allowlisted for D1 in the test config.
pub fn stamp_micros() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}
