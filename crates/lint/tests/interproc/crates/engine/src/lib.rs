//! Deterministic engine code. It never touches the clock directly —
//! the taint only shows up when the whole workspace is analyzed.
pub fn tick() -> u128 {
    clockutil::stamp_micros() + 1
}
