//! D2 negative: ordered structures iterate freely; hash maps are only
//! probed point-wise.
use std::collections::{BTreeMap, HashMap};

struct State {
    by_time: BTreeMap<u64, u32>,
    index: HashMap<u64, u32>,
}

impl State {
    fn scan(&self) -> (u32, Option<u32>) {
        let mut total = 0;
        for (_k, v) in &self.by_time {
            total += *v; // BTreeMap: deterministic order
        }
        (total, self.index.get(&7).copied())
    }
}
