//! D2 negative: ordered structures iterate freely; hash maps are only
//! probed point-wise, folded order-free, or collected-and-sorted —
//! all proven safe by the flow pass without annotations.
use std::collections::{BTreeMap, HashMap};

struct State {
    by_time: BTreeMap<u64, u32>,
    index: HashMap<u64, u32>,
}

impl State {
    fn scan(&self) -> (u32, Option<u32>) {
        let mut total = 0;
        for (_k, v) in &self.by_time {
            total += *v; // BTreeMap: deterministic order
        }
        (total, self.index.get(&7).copied())
    }

    fn summarize(&self) -> (usize, u32, Vec<u64>) {
        let live = self.index.values().filter(|v| **v > 0).count();
        let total: u32 = self.index.values().sum();
        let mut keys: Vec<u64> = self.index.keys().copied().collect();
        keys.sort_unstable();
        (live, total, keys)
    }

    fn reindex(&self) -> BTreeMap<u64, u32> {
        self.index.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u32>>()
    }
}
