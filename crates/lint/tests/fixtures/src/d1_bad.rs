//! D1 positive: wall-clock reads in deterministic code.
use std::time::{Instant, SystemTime};

fn elapsed_wall() -> u128 {
    let start = Instant::now(); // violation
    let _epoch = SystemTime::now(); // violation
    start.elapsed().as_nanos()
}
