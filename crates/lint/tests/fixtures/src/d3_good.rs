//! D3 negative: seeded generator threaded explicitly.
struct Prng(u64);

impl Prng {
    fn seeded(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.rotate_left(7) ^ 0xdead_beef;
        self.0
    }
}

fn roll(seed: u64) -> u64 {
    Prng::seeded(seed).next()
}
