//! D2 positive: hash-ordered iteration in a deterministic crate whose
//! order escapes (returned, collected without a sort, or retained with
//! no provable fill-then-sort).
use std::collections::{HashMap, HashSet};

struct State {
    txns: HashMap<u64, u32>,
}

impl State {
    fn sweep(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for (k, _v) in &self.txns {
            out.push(*k); // violation: `out` is returned unsorted
        }
        let live: HashSet<u64> = HashSet::new();
        let _ids: Vec<u64> = live.iter().copied().collect(); // violation: collected, never sorted
        self.txns.retain(|_, v| *v > 0); // violation (closure sees hash order)
        out
    }
}
