//! D2 positive: hash-ordered iteration in a deterministic crate.
use std::collections::{HashMap, HashSet};

struct State {
    txns: HashMap<u64, u32>,
}

impl State {
    fn sweep(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for (k, _v) in &self.txns {
            out.push(*k); // violation: order is process-random
        }
        let live: HashSet<u64> = HashSet::new();
        let _count = live.iter().count(); // violation
        self.txns.retain(|_, v| *v > 0); // violation (closure sees hash order)
        out
    }
}
