//! D9 negative: fallible lookups return options, the one index carries
//! its invariant, and test code may panic freely.
fn head_and_tail(v: &[u64]) -> Option<u64> {
    let head = *v.first()?;
    let tail = *v.last()?;
    // detlint: allow(D9) — first() returned Some, so the slice is nonempty
    Some(head + tail + v[0])
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = [1u64, 2];
        assert_eq!(super::head_and_tail(&v).unwrap(), 4);
        assert_eq!(v[0], 1);
    }
}
