//! D6 negative: library code returns strings; the print lives in a
//! doc example, which is a comment to the linter.
//!
//! ```
//! println!("{}", render(3));
//! ```
fn render(hits: u64) -> String {
    format!("hits = {hits}")
}
