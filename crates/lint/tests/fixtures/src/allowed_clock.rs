//! D1 allowlist case: this module is exempted by configuration
//! (`[rules.D1] allow = ["src/allowed_clock.rs"]`), so the read below
//! is fine without an inline annotation.
use std::time::Instant;

fn harness_timestamp() -> std::time::Instant {
    Instant::now()
}
