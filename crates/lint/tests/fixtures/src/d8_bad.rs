//! D8 positive: a channel send while a lock guard is live.
struct Shared<T>(std::sync::Mutex<T>);

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

struct Hub {
    state: Shared<u64>,
    updates: std::sync::mpsc::Sender<u64>,
}

impl Hub {
    fn publish(&self) {
        let g = self.state.lock();
        let _ = self.updates.send(*g); // violation: send under `Hub.state`
    }
}
