//! D8 negative: the guard is dropped before the send.
struct Cell<T>(std::sync::Mutex<T>);

impl<T> Cell<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

struct Relay {
    state: Cell<u64>,
    updates: std::sync::mpsc::Sender<u64>,
}

impl Relay {
    fn publish(&self) {
        let snapshot = {
            let g = self.state.lock();
            *g
        };
        let _ = self.updates.send(snapshot);
    }
}
