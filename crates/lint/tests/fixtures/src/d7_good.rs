//! D7 negative: both paths honor the same lock order.
struct Guarded<T>(std::sync::Mutex<T>);

impl<T> Guarded<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

struct Registry {
    names: Guarded<u64>,
    owners: Guarded<u64>,
}

impl Registry {
    fn bind(&self) -> u64 {
        let n = self.names.lock();
        let o = self.owners.lock();
        *n + *o
    }

    fn resolve(&self) -> u64 {
        let n = self.names.lock();
        let o = self.owners.lock();
        *n * *o
    }
}
