//! D6 positive: printing from library code.
fn report(hits: u64) {
    println!("hits = {hits}"); // violation
    eprintln!("warn"); // violation
}
