//! D7 positive: two locks acquired in opposite orders on two paths.
struct Lock<T>(std::sync::Mutex<T>);

impl<T> Lock<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

struct Ledger {
    accounts: Lock<u64>,
    journal: Lock<u64>,
}

impl Ledger {
    fn post(&self) -> u64 {
        let a = self.accounts.lock();
        let j = self.journal.lock();
        *a + *j
    }

    fn audit(&self) -> u64 {
        let j = self.journal.lock();
        let a = self.accounts.lock(); // violation: closes the accounts/journal cycle
        *a + *j
    }
}
