//! D5 negative: the suppression explains itself.

// Kept for the follow-up PR that wires the CLI flag through.
#[allow(dead_code)]
fn helper() {}

#[allow(clippy::cast_possible_truncation)] // bucket count fits in u8 by construction
fn bucket(x: u64) -> u8 {
    (x % 251) as u8
}
