//! D5 positive: a bare `#[allow]`.

#[allow(dead_code)]
fn helper() {}
