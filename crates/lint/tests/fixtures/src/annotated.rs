//! Annotation case: deliberate violations suppressed in place, each
//! with a mandatory reason.
use std::collections::HashMap;

struct State {
    counts: HashMap<u64, u64>,
}

impl State {
    fn total(&self) -> u64 {
        // detlint: allow(D2) — summing is independent of visit order
        self.counts.values().sum()
    }

    fn dead_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.counts.keys().copied().collect(); // detlint: allow(D2) — sorted on the next line
        keys.sort_unstable();
        keys
    }
}
