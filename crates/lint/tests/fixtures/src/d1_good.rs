//! D1 negative: simulated time only; `Instant::now()` appears solely in
//! this comment and in the string below, which must not fire.
fn tick(now_us: u64) -> u64 {
    let label = "Instant::now() is banned here";
    let _ = label;
    now_us + 1
}
