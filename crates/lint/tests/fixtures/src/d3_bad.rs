//! D3 positive: ambient randomness sources.
use std::collections::hash_map::DefaultHasher; // violation
use std::hash::RandomState; // violation

fn roll() -> u64 {
    let _hasher = DefaultHasher::new(); // violation
    42
}
