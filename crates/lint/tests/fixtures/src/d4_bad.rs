//! D4 positive: undocumented `unsafe`.
fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } // violation: no SAFETY comment
}
