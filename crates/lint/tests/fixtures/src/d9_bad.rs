//! D9 positive: panic-capable operations in engine library code.
fn head_and_tail(v: &[u64]) -> u64 {
    let head = *v.first().unwrap(); // violation: `.unwrap()`
    let tail = *v.last().expect("nonempty"); // violation: `.expect()`
    head + tail + v[0] // violation: indexing
}
