//! End-to-end tests for the `detlint` engine: one positive and one
//! negative fixture per rule, the allowlist/annotation escape hatches,
//! and — the gate this crate exists for — a check that the repository
//! itself is clean.

use siteselect_lint::{check_paths, check_workspace, load_config, Config, RuleId};
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// The contract the fixture mini-workspace runs under: everything is
/// deterministic, the lock-order and panic rules are in force, and one
/// module is allowlisted for wall-clock reads.
fn fixture_cfg() -> Config {
    Config::parse(
        r#"
[deterministic]
crates = ["root"]

[rules.D1]
allow = ["src/allowed_clock.rs"]

[rules.D7]
crates = ["root"]

[rules.D8]
crates = ["root"]

[rules.D9]
crates = ["root"]
"#,
    )
    .expect("fixture config parses")
}

/// Lints one fixture and returns the rules that fired, in file order.
fn lint_fixture(name: &str) -> Vec<RuleId> {
    let report = check_paths(
        &fixtures_root(),
        &[format!("src/{name}")],
        &fixture_cfg(),
        None,
    )
    .expect("fixture readable");
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn positive_fixtures_fire_their_rule() {
    assert_eq!(lint_fixture("d1_bad.rs"), vec![RuleId::D1, RuleId::D1]);
    assert_eq!(
        lint_fixture("d2_bad.rs"),
        vec![RuleId::D2, RuleId::D2, RuleId::D2]
    );
    assert_eq!(
        lint_fixture("d3_bad.rs"),
        vec![RuleId::D3, RuleId::D3, RuleId::D3]
    );
    assert_eq!(lint_fixture("d4_bad.rs"), vec![RuleId::D4]);
    assert_eq!(lint_fixture("d5_bad.rs"), vec![RuleId::D5]);
    assert_eq!(lint_fixture("d6_bad.rs"), vec![RuleId::D6, RuleId::D6]);
    assert_eq!(
        lint_fixture("d9_bad.rs"),
        vec![RuleId::D9, RuleId::D9, RuleId::D9]
    );
}

#[test]
fn negative_fixtures_are_clean() {
    for name in [
        "d1_good.rs",
        "d2_good.rs",
        "d3_good.rs",
        "d4_good.rs",
        "d5_good.rs",
        "d6_good.rs",
        "d7_good.rs",
        "d8_good.rs",
        "d9_good.rs",
    ] {
        assert_eq!(lint_fixture(name), Vec::new(), "{name} should be clean");
    }
}

#[test]
fn config_allowlist_exempts_a_module() {
    assert_eq!(lint_fixture("allowed_clock.rs"), Vec::new());
    // The same file without the allowlist is a violation.
    let strict = Config::parse("[deterministic]\ncrates = [\"root\"]").expect("parses");
    let report = check_paths(
        &fixtures_root(),
        &["src/allowed_clock.rs".to_string()],
        &strict,
        None,
    )
    .expect("readable");
    assert_eq!(
        report.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
        vec![RuleId::D1]
    );
}

#[test]
fn inline_annotations_suppress_and_are_counted() {
    let report = check_paths(
        &fixtures_root(),
        &["src/annotated.rs".to_string()],
        &fixture_cfg(),
        None,
    )
    .expect("readable");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.suppressions, 2);
}

#[test]
fn diagnostics_carry_file_line_and_rule() {
    let report = check_paths(
        &fixtures_root(),
        &["src/d1_bad.rs".to_string()],
        &fixture_cfg(),
        None,
    )
    .expect("readable");
    let first = &report.violations[0];
    assert_eq!(first.file, "src/d1_bad.rs");
    assert_eq!(first.line, 5);
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("src/d1_bad.rs:5: detlint[D1]:"),
        "unexpected diagnostic shape: {rendered}"
    );
}

#[test]
fn whole_fixture_tree_discovery_finds_every_bad_file() {
    let report =
        check_workspace(&fixtures_root(), &fixture_cfg(), None).expect("fixture tree scans");
    // 9 bad fixtures with 2+3+3+1+1+2+1+1+3 = 17 violations; good/
    // annotated/allowlisted files contribute none.
    assert_eq!(report.violations.len(), 17);
    assert_eq!(report.files_checked, 20);
}

/// The lock-order rules only exist at the workspace level: D7 needs the
/// acquired-while-held graph, D8 needs guard scopes. One cycle and one
/// send-under-lock in the fixture tree, each reported exactly once.
#[test]
fn lock_rules_fire_in_the_fixture_tree() {
    let report =
        check_workspace(&fixtures_root(), &fixture_cfg(), None).expect("fixture tree scans");
    let lock_hits: Vec<(&str, RuleId)> = report
        .violations
        .iter()
        .filter(|v| matches!(v.rule, RuleId::D7 | RuleId::D8))
        .map(|v| (v.file.as_str(), v.rule))
        .collect();
    assert_eq!(
        lock_hits,
        vec![
            ("src/d7_bad.rs", RuleId::D7),
            ("src/d8_bad.rs", RuleId::D8),
        ]
    );
}

/// The regression detlint v2 exists for: a deterministic crate reaching
/// the wall clock *through* an allowlisted helper crate. The per-file
/// pass sees nothing; the interprocedural pass reports the frontier
/// call site in the caller.
#[test]
fn interprocedural_flow_needs_the_workspace_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/interproc");
    let cfg = Config::parse(
        r#"
[deterministic]
crates = ["engine", "clockutil"]

[rules.D1]
allow = ["crates/clockutil/src/lib.rs"]
"#,
    )
    .expect("interproc config parses");
    // v1 behaviour: the engine file alone is spotless.
    let per_file = check_paths(
        &root,
        &["crates/engine/src/lib.rs".to_string()],
        &cfg,
        None,
    )
    .expect("engine file readable");
    assert!(per_file.is_clean(), "{:?}", per_file.violations);
    // v2: the workspace pass follows the call into the helper.
    let full = check_workspace(&root, &cfg, None).expect("interproc tree scans");
    let hits: Vec<(&str, RuleId)> = full
        .violations
        .iter()
        .map(|v| (v.file.as_str(), v.rule))
        .collect();
    assert_eq!(hits, vec![("crates/engine/src/lib.rs", RuleId::D1)]);
    let message = &full.violations[0].message;
    assert!(
        message.contains("stamp_micros") && message.contains("Instant::now"),
        "witness chain missing from: {message}"
    );
}

/// The acceptance gate: the real repository, under its real
/// `detlint.toml`, has zero violations.
#[test]
fn repository_is_clean_under_its_own_contract() {
    let root = repo_root();
    let cfg = load_config(&root).expect("detlint.toml parses");
    assert!(
        !cfg.deterministic_crates.is_empty(),
        "repo config must name the deterministic crates"
    );
    let baseline = siteselect_lint::load_baseline(&root).expect("baseline parses");
    let report = check_workspace(&root, &cfg, baseline.as_ref()).expect("workspace scans");
    let rendered: Vec<String> =
        report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "repository violates its determinism contract:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_checked > 80, "scan looks truncated");
}

/// `detlint check --workspace` — the exact CI invocation — exits 0.
#[test]
fn cli_check_workspace_exits_zero_on_the_repo() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["check", "--workspace", "--root"])
        .arg(repo_root())
        .output()
        .expect("detlint binary runs");
    assert!(
        out.status.success(),
        "detlint check --workspace failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Seeding fresh D1/D2 violations into a deterministic crate must flip
/// the CLI to a non-zero exit with `file:line` diagnostics.
#[test]
fn cli_flags_seeded_violations_with_file_line() {
    let dir = std::env::temp_dir().join(format!(
        "detlint_seed_{}",
        std::process::id()
    ));
    let src_dir = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        dir.join("detlint.toml"),
        "[deterministic]\ncrates = [\"sim\"]\n",
    )
    .expect("write config");
    std::fs::write(
        src_dir.join("bad.rs"),
        "use std::collections::HashMap;\n\
         fn f() {\n\
             let _t = std::time::Instant::now();\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             for _ in &m {}\n\
         }\n",
    )
    .expect("write seeded violation");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["check", "--workspace", "--root"])
        .arg(&dir)
        .output()
        .expect("detlint binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(1), "seeded violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/sim/src/bad.rs:3: detlint[D1]"), "{stdout}");
    assert!(stdout.contains("crates/sim/src/bad.rs:5: detlint[D2]"), "{stdout}");
}

/// The rule-table comment block in detlint.toml is generated; it must
/// match `detlint rules --toml` byte-for-byte.
#[test]
fn config_rule_table_matches_the_registry() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["rules", "--toml"])
        .output()
        .expect("detlint binary runs");
    assert!(out.status.success());
    let table = String::from_utf8(out.stdout).expect("rule table is utf-8");
    let config =
        std::fs::read_to_string(repo_root().join("detlint.toml")).expect("config readable");
    assert!(
        config.contains(table.trim_end()),
        "detlint.toml rule table is stale — regenerate with `detlint rules --toml`"
    );
}

/// The recursive-descent parser digests every file in the repository
/// without a single recovery: a parse error means the call graph (and
/// with it D1/D3/D7/D8) silently loses functions.
#[test]
fn whole_repository_parses_without_errors() {
    let root = repo_root();
    let cfg = load_config(&root).expect("detlint.toml parses");
    let files = siteselect_lint::workspace::discover_files(&root, &cfg).expect("discovery");
    let units = siteselect_lint::workspace::build_units(&root, &files).expect("units build");
    assert!(units.len() > 90, "discovery looks truncated: {}", units.len());
    let mut fn_count = 0;
    for unit in &units {
        assert!(
            unit.parsed.errors.is_empty(),
            "{} has parse errors: {:?}",
            unit.path,
            unit.parsed.errors
        );
        fn_count += unit.parsed.fns.len();
    }
    assert!(fn_count > 1000, "suspiciously few functions parsed: {fn_count}");
}

/// The acceptance gate for D7: the repository's lock graph contains the
/// two known acquired-while-held edges and nothing cyclic.
#[test]
fn repository_lock_graph_is_acyclic_with_known_edges() {
    let root = repo_root();
    let cfg = load_config(&root).expect("detlint.toml parses");
    let files = siteselect_lint::workspace::discover_files(&root, &cfg).expect("discovery");
    let units = siteselect_lint::workspace::build_units(&root, &files).expect("units build");
    let graph = siteselect_lint::callgraph::CallGraph::build(&units);
    let active: Vec<bool> = units
        .iter()
        .map(|u| {
            cfg.rule_applies_to(RuleId::D7, &u.path) || cfg.rule_applies_to(RuleId::D8, &u.path)
        })
        .collect();
    let (lock_graph, violations) = siteselect_lint::locks::check(&units, &graph, &active);
    assert!(
        lock_graph.has_edge("ClientShared.state", "SharedServer.inner"),
        "client → server edge missing: {:?}",
        lock_graph.edges
    );
    assert!(
        lock_graph.has_edge("SharedServer.inner", "SharedServer.callback_tx"),
        "server → callback edge missing: {:?}",
        lock_graph.edges
    );
    let cycles: Vec<_> = violations.iter().filter(|v| v.rule == RuleId::D7).collect();
    assert!(cycles.is_empty(), "lock graph has a cycle: {cycles:?}");
}

/// `check --json` is byte-deterministic: two runs over the same tree
/// produce identical output, and it parses as JSON.
#[test]
fn cli_json_output_is_byte_deterministic() {
    let run = || {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
            .args(["check", "--workspace", "--json", "--root"])
            .arg(repo_root())
            .output()
            .expect("detlint binary runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "check --json must be byte-deterministic");
    let text = String::from_utf8(first).expect("json output is utf-8");
    let value = siteselect_lint::json::parse(&text).expect("output parses as JSON");
    let obj = value.as_obj().expect("top level is an object");
    assert!(obj.contains_key("violations"));
    assert!(obj.contains_key("files"));
}

/// The ratchet: a baseline accepting more findings than remain is
/// *stale* — tolerated by a plain `check`, fatal under `--ratchet` —
/// and findings in files the baseline never saw always fail.
#[test]
fn cli_ratchet_flags_stale_and_unbaselined_findings() {
    let dir = std::env::temp_dir().join(format!("detlint_ratchet_{}", std::process::id()));
    let src_dir = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        dir.join("detlint.toml"),
        "[deterministic]\ncrates = []\n\n[rules.D9]\ncrates = [\"sim\"]\n",
    )
    .expect("write config");
    std::fs::write(
        src_dir.join("lib.rs"),
        "fn f(v: &[u8]) -> u8 {\n    *v.first().unwrap()\n}\n",
    )
    .expect("write panic site");
    // Baseline accepts two findings; only one remains → stale.
    std::fs::write(
        dir.join("detlint.baseline.json"),
        "{\"version\": 1, \"counts\": {\"crates/sim/src/lib.rs\": {\"D9\": 2}}}\n",
    )
    .expect("write baseline");
    let check = |extra: &[&str]| {
        let mut args = vec!["check", "--workspace"];
        args.extend_from_slice(extra);
        args.push("--root");
        std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
            .args(&args)
            .arg(&dir)
            .output()
            .expect("detlint binary runs")
    };
    let plain = check(&[]);
    assert!(
        plain.status.success(),
        "stale baseline must not fail a plain check:\n{}",
        String::from_utf8_lossy(&plain.stdout)
    );
    let ratchet = check(&["--ratchet"]);
    assert_eq!(
        ratchet.status.code(),
        Some(1),
        "stale baseline must fail under --ratchet"
    );
    let stdout = String::from_utf8_lossy(&ratchet.stdout);
    assert!(stdout.contains("stale baseline"), "{stdout}");
    // A finding in a file the baseline never saw fails either way.
    std::fs::write(
        src_dir.join("fresh.rs"),
        "fn g(v: &[u8]) -> u8 {\n    v[0]\n}\n",
    )
    .expect("write unbaselined panic site");
    let fresh = check(&[]);
    assert_eq!(fresh.status.code(), Some(1), "unbaselined finding must fail");
    let stdout = String::from_utf8_lossy(&fresh.stdout);
    assert!(stdout.contains("crates/sim/src/fresh.rs:2: detlint[D9]"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
