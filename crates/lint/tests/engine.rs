//! End-to-end tests for the `detlint` engine: one positive and one
//! negative fixture per rule, the allowlist/annotation escape hatches,
//! and — the gate this crate exists for — a check that the repository
//! itself is clean.

use siteselect_lint::{check_paths, check_workspace, load_config, Config, RuleId};
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// The contract the fixture mini-workspace runs under: everything is
/// deterministic, and one module is allowlisted for wall-clock reads.
fn fixture_cfg() -> Config {
    Config::parse(
        r#"
[deterministic]
crates = ["root"]

[rules.D1]
allow = ["src/allowed_clock.rs"]
"#,
    )
    .expect("fixture config parses")
}

/// Lints one fixture and returns the rules that fired, in file order.
fn lint_fixture(name: &str) -> Vec<RuleId> {
    let report = check_paths(
        &fixtures_root(),
        &[format!("src/{name}")],
        &fixture_cfg(),
    )
    .expect("fixture readable");
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn positive_fixtures_fire_their_rule() {
    assert_eq!(lint_fixture("d1_bad.rs"), vec![RuleId::D1, RuleId::D1]);
    assert_eq!(
        lint_fixture("d2_bad.rs"),
        vec![RuleId::D2, RuleId::D2, RuleId::D2]
    );
    assert_eq!(
        lint_fixture("d3_bad.rs"),
        vec![RuleId::D3, RuleId::D3, RuleId::D3]
    );
    assert_eq!(lint_fixture("d4_bad.rs"), vec![RuleId::D4]);
    assert_eq!(lint_fixture("d5_bad.rs"), vec![RuleId::D5]);
    assert_eq!(lint_fixture("d6_bad.rs"), vec![RuleId::D6, RuleId::D6]);
}

#[test]
fn negative_fixtures_are_clean() {
    for name in [
        "d1_good.rs",
        "d2_good.rs",
        "d3_good.rs",
        "d4_good.rs",
        "d5_good.rs",
        "d6_good.rs",
    ] {
        assert_eq!(lint_fixture(name), Vec::new(), "{name} should be clean");
    }
}

#[test]
fn config_allowlist_exempts_a_module() {
    assert_eq!(lint_fixture("allowed_clock.rs"), Vec::new());
    // The same file without the allowlist is a violation.
    let strict = Config::parse("[deterministic]\ncrates = [\"root\"]").expect("parses");
    let report = check_paths(
        &fixtures_root(),
        &["src/allowed_clock.rs".to_string()],
        &strict,
    )
    .expect("readable");
    assert_eq!(
        report.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
        vec![RuleId::D1]
    );
}

#[test]
fn inline_annotations_suppress_and_are_counted() {
    let report = check_paths(
        &fixtures_root(),
        &["src/annotated.rs".to_string()],
        &fixture_cfg(),
    )
    .expect("readable");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.suppressions, 2);
}

#[test]
fn diagnostics_carry_file_line_and_rule() {
    let report = check_paths(
        &fixtures_root(),
        &["src/d1_bad.rs".to_string()],
        &fixture_cfg(),
    )
    .expect("readable");
    let first = &report.violations[0];
    assert_eq!(first.file, "src/d1_bad.rs");
    assert_eq!(first.line, 5);
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("src/d1_bad.rs:5: detlint[D1]:"),
        "unexpected diagnostic shape: {rendered}"
    );
}

#[test]
fn whole_fixture_tree_discovery_finds_every_bad_file() {
    let report =
        check_workspace(&fixtures_root(), &fixture_cfg()).expect("fixture tree scans");
    // 6 bad fixtures with 2+3+3+1+1+2 = 12 violations; good/annotated/
    // allowlisted files contribute none.
    assert_eq!(report.violations.len(), 12);
    assert_eq!(report.files_checked, 14);
}

/// The acceptance gate: the real repository, under its real
/// `detlint.toml`, has zero violations.
#[test]
fn repository_is_clean_under_its_own_contract() {
    let root = repo_root();
    let cfg = load_config(&root).expect("detlint.toml parses");
    assert!(
        !cfg.deterministic_crates.is_empty(),
        "repo config must name the deterministic crates"
    );
    let report = check_workspace(&root, &cfg).expect("workspace scans");
    let rendered: Vec<String> =
        report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "repository violates its determinism contract:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_checked > 80, "scan looks truncated");
}

/// `detlint check --workspace` — the exact CI invocation — exits 0.
#[test]
fn cli_check_workspace_exits_zero_on_the_repo() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["check", "--workspace", "--root"])
        .arg(repo_root())
        .output()
        .expect("detlint binary runs");
    assert!(
        out.status.success(),
        "detlint check --workspace failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Seeding fresh D1/D2 violations into a deterministic crate must flip
/// the CLI to a non-zero exit with `file:line` diagnostics.
#[test]
fn cli_flags_seeded_violations_with_file_line() {
    let dir = std::env::temp_dir().join(format!(
        "detlint_seed_{}",
        std::process::id()
    ));
    let src_dir = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        dir.join("detlint.toml"),
        "[deterministic]\ncrates = [\"sim\"]\n",
    )
    .expect("write config");
    std::fs::write(
        src_dir.join("bad.rs"),
        "use std::collections::HashMap;\n\
         fn f() {\n\
             let _t = std::time::Instant::now();\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             for _ in &m {}\n\
         }\n",
    )
    .expect("write seeded violation");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["check", "--workspace", "--root"])
        .arg(&dir)
        .output()
        .expect("detlint binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(1), "seeded violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/sim/src/bad.rs:3: detlint[D1]"), "{stdout}");
    assert!(stdout.contains("crates/sim/src/bad.rs:5: detlint[D2]"), "{stdout}");
}
